"""Machine-readable solver benchmark harness.

Times the IDE/SPLLIFT hot path over the four paper-shaped subjects and the
solver micro-benchmarks, then writes a JSON report to ``BENCH_solver.json``
so successive PRs have a perf trajectory to compare against.  Run it as::

    PYTHONPATH=src python benchmarks/bench_solver.py [-o BENCH_solver.json]
                                                     [--rounds 3] [--quick]

Per benchmark the report records minimum and mean wall time over ``rounds``
runs, the solver's work counters (jump functions, flow applications, edge
compositions, value updates) and — for lifted runs — the edge-algebra
cache counters (compose/join hits and misses, interned edge count) with
derived hit rates.  Unlike the pytest-benchmark suites this output is
stable, diffable and cheap enough for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.core import SPLLift
from repro.ide.binary import solve_ifds_via_ide
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import derive_product
from repro.spl.benchmarks import (
    berkeleydb_like,
    gpl_like,
    lampiro_like,
    mm08_like,
)
from repro.utils.timing import best_of

SUBJECT_BUILDERS = (
    ("BerkeleyDB-like", berkeleydb_like),
    ("GPL-like", gpl_like),
    ("Lampiro-like", lampiro_like),
    ("MM08-like", mm08_like),
)
ANALYSES = (
    ("possible_types", PossibleTypesAnalysis),
    ("reaching_definitions", ReachingDefinitionsAnalysis),
    ("uninitialized_variables", UninitializedVariablesAnalysis),
)

_CACHE_KEYS = (
    "compose_cache_hits",
    "compose_cache_misses",
    "join_cache_hits",
    "join_cache_misses",
    "interned_edges",
)


def _hit_rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    if total == 0:
        return None
    return round(hits / total, 4)


def _cache_summary(stats: Dict[str, int]) -> Dict[str, object]:
    summary: Dict[str, object] = {
        key: stats[key] for key in _CACHE_KEYS if key in stats
    }
    if "compose_cache_hits" in stats:
        summary["compose_hit_rate"] = _hit_rate(
            stats["compose_cache_hits"], stats["compose_cache_misses"]
        )
    if "join_cache_hits" in stats:
        summary["join_hit_rate"] = _hit_rate(
            stats["join_cache_hits"], stats["join_cache_misses"]
        )
    return summary


def _record(
    name: str, fn: Callable[[], Dict[str, int]], rounds: int
) -> Dict[str, object]:
    """Time ``fn`` (which returns solver stats) and package one report row."""
    measured = best_of(fn, rounds=rounds)
    stats: Dict[str, int] = measured["result"]  # type: ignore[assignment]
    row: Dict[str, object] = {
        "benchmark": name,
        "min_seconds": round(measured["min_seconds"], 6),
        "mean_seconds": round(measured["mean_seconds"], 6),
        "rounds": measured["rounds"],
        "stats": dict(stats),
    }
    cache = _cache_summary(stats)
    if cache:
        row["cache"] = cache
    print(
        f"  {name:<55s} {row['min_seconds']*1000.0:10.2f} ms (min of {rounds})",
        flush=True,
    )
    return row


def _git_revision(repo_root: Path) -> Optional[str]:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=repo_root,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.CalledProcessError):
        return None


def run_benchmarks(
    rounds: int,
    quick: bool,
    parallel: int = 4,
    max_overhead_pct: float = 2.0,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []

    print("building subjects ...", flush=True)
    subjects = {}
    for name, builder in SUBJECT_BUILDERS:
        product_line = builder()
        product_line.icfg  # force parse/lower/ICFG outside the timed region
        subjects[name] = product_line

    # --- SPLLIFT single passes (the Table 2 hot path) -----------------
    print("spllift single passes:", flush=True)
    subject_names = ("GPL-like",) if quick else tuple(subjects)
    analyses = ANALYSES[:1] if quick else ANALYSES
    for subject_name in subject_names:
        product_line = subjects[subject_name]
        for analysis_name, analysis_class in analyses:

            def run(pl=product_line, cls=analysis_class) -> Dict[str, int]:
                results = SPLLift(
                    cls(pl.icfg), feature_model=pl.feature_model
                ).solve()
                return results.stats

            rows.append(
                _record(
                    f"spllift/{subject_name}/{analysis_name}", run, rounds
                )
            )

    # --- A/B rows: worklist scheduling and BDD reordering -------------
    # Same subjects, reaching-definitions only (the densest lifted pass):
    # once with the RPO priority worklist, once with sifting-based dynamic
    # variable reordering.  Compare against the plain
    # ``spllift/<subject>/reaching_definitions`` rows above.
    print("spllift A/B (rpo worklist, sift reordering):", flush=True)
    ab_subjects = ("GPL-like",) if quick else tuple(subjects)
    for subject_name in ab_subjects:
        product_line = subjects[subject_name]

        def run_rpo(pl=product_line) -> Dict[str, int]:
            results = SPLLift(
                ReachingDefinitionsAnalysis(pl.icfg),
                feature_model=pl.feature_model,
            ).solve(worklist_order="rpo")
            return results.stats

        def run_sift(pl=product_line) -> Dict[str, int]:
            results = SPLLift(
                ReachingDefinitionsAnalysis(pl.icfg),
                feature_model=pl.feature_model,
                reorder="sift",
            ).solve()
            return results.stats

        rows.append(
            _record(
                f"spllift/{subject_name}/reaching_definitions/rpo",
                run_rpo,
                rounds,
            )
        )
        rows.append(
            _record(
                f"spllift/{subject_name}/reaching_definitions/sift",
                run_sift,
                rounds,
            )
        )

    # --- A/B rows: evaluation engine (tabulation vs lifted Datalog) ---
    # Same subject/analysis pairs as the ``spllift/...`` single passes
    # above, solved with ``engine="datalog"`` — the semi-naive rule
    # evaluator.  Results are bit-identical (gated by
    # scripts/check_digest_identity.py --engine datalog); these rows are
    # the wall-time and work-counter A/B.
    print("spllift A/B (datalog engine):", flush=True)
    engine_subjects = ("GPL-like",) if quick else tuple(subjects)
    engine_analyses = ANALYSES[:1] if quick else ANALYSES
    for subject_name in engine_subjects:
        product_line = subjects[subject_name]
        for analysis_name, analysis_class in engine_analyses:

            def run_datalog(pl=product_line, cls=analysis_class) -> Dict[str, int]:
                results = SPLLift(
                    cls(pl.icfg), feature_model=pl.feature_model
                ).solve(engine="datalog")
                return results.stats

            rows.append(
                _record(
                    f"engine/datalog/{subject_name}/{analysis_name}",
                    run_datalog,
                    rounds,
                )
            )

    # --- parallel solve and campaign (sequential vs -j) ----------------
    # The per-entry partitioned solve on the seed-richest analysis, and
    # the Table 2 campaign fanned over worker processes.  The campaign
    # cutoff is set high enough that no cell is truncated, so sequential
    # and parallel rows measure *identical* work — per-configuration wall
    # times inflate under contention and would otherwise trip the cutoff
    # earlier in the parallel run, flattering the comparison.
    print(f"parallel solve + campaign (sequential vs -j {parallel}):", flush=True)
    from repro.experiments.table2 import run_table2

    par_subjects = ("GPL-like",) if quick else ("GPL-like", "MM08-like")
    for subject_name in par_subjects:
        product_line = subjects[subject_name]

        def run_parallel_solve(pl=product_line) -> Dict[str, int]:
            results = SPLLift(
                UninitializedVariablesAnalysis(pl.icfg),
                feature_model=pl.feature_model,
            ).solve(parallel=parallel)
            return results.stats

        rows.append(
            _record(
                f"spllift/{subject_name}/uninitialized_variables/parallel_j{parallel}",
                run_parallel_solve,
                rounds,
            )
        )

    campaign_builders = [
        (name, builder)
        for name, builder in SUBJECT_BUILDERS
        if name in par_subjects
    ]
    campaign_analyses = (
        [("Uninitialized Variables", UninitializedVariablesAnalysis)]
        if quick
        else [(name.replace("_", " ").title(), cls) for name, cls in ANALYSES]
    )
    campaign_cutoff = 10.0 if quick else 120.0

    def run_campaign(parallel_workers: Optional[int]) -> Dict[str, int]:
        table_rows = run_table2(
            campaign_builders,
            campaign_analyses,
            cutoff_seconds=campaign_cutoff,
            parallel=parallel_workers,
        )
        cells = [cell for row in table_rows for cell in row.cells]
        return {
            "cells": len(cells),
            "configurations_run": sum(
                cell.a2.configurations_run for cell in cells
            ),
        }

    rows.append(
        _record(
            f"campaign/table2/{len(campaign_builders)}_subjects/sequential",
            lambda: run_campaign(1),
            rounds,
        )
    )
    rows.append(
        _record(
            f"campaign/table2/{len(campaign_builders)}_subjects/parallel_j{parallel}",
            lambda: run_campaign(parallel),
            rounds,
        )
    )

    # --- observability A/B: tracer disabled vs enabled ----------------
    # ``off`` runs the exact code path every row above used (the
    # NullTracer no-op guard); ``on`` installs a real tracer and pays
    # for span bookkeeping.  The off row must stay within
    # ``max_overhead_pct`` of the plain single-pass row measured above:
    # disabled telemetry is required to be free (ISSUE 5 gate).
    print("observability overhead A/B (tracer off vs on):", flush=True)
    from repro.obs import runtime as obs_runtime

    obs_analysis_name, obs_analysis_class = (
        ANALYSES[0] if quick else ANALYSES[1]
    )
    obs_subject = "GPL-like"
    obs_product_line = subjects[obs_subject]

    def run_obs(
        pl=obs_product_line, cls=obs_analysis_class
    ) -> Dict[str, int]:
        results = SPLLift(
            cls(pl.icfg), feature_model=pl.feature_model
        ).solve()
        return results.stats

    # A fresh plain row measured back-to-back with the off row: the
    # process has aged since the single-pass section (warm BDD tables,
    # allocator state), so gating against that early row measures drift,
    # not overhead.
    plain_row = _record(
        f"obs_overhead/{obs_subject}/{obs_analysis_name}/plain",
        run_obs,
        rounds,
    )
    rows.append(plain_row)

    off_row = _record(
        f"obs_overhead/{obs_subject}/{obs_analysis_name}/off", run_obs, rounds
    )
    rows.append(off_row)

    obs_runtime.reset()
    obs_runtime.enable_tracing()
    try:
        on_row = _record(
            f"obs_overhead/{obs_subject}/{obs_analysis_name}/on",
            run_obs,
            rounds,
        )
        on_row["trace_events"] = len(obs_runtime.tracer().events())
    finally:
        obs_runtime.disable_tracing()
        obs_runtime.reset()
    rows.append(on_row)

    base_seconds = float(plain_row["min_seconds"])
    off_seconds = float(off_row["min_seconds"])
    on_seconds = float(on_row["min_seconds"])
    overhead_pct = (
        100.0 * (off_seconds - base_seconds) / base_seconds
        if base_seconds
        else 0.0
    )
    off_row["overhead_pct_vs_plain"] = round(overhead_pct, 2)
    if off_seconds:
        on_row["overhead_pct_vs_off"] = round(
            100.0 * (on_seconds - off_seconds) / off_seconds, 2
        )
    # Absolute slack absorbs scheduler noise on sub-10ms rows, where a
    # single context switch dwarfs any percentage threshold.
    slack_seconds = 0.005
    if (
        off_seconds - base_seconds > slack_seconds
        and overhead_pct > max_overhead_pct
    ):
        raise SystemExit(
            f"obs_overhead: disabled-telemetry run is {overhead_pct:.1f}% "
            f"slower than the plain pass ({off_seconds:.6f}s vs "
            f"{base_seconds:.6f}s); limit is {max_overhead_pct:.1f}%"
        )
    print(
        f"  disabled-telemetry overhead vs plain pass: {overhead_pct:+.2f}% "
        f"(limit {max_overhead_pct:.1f}%)",
        flush=True,
    )

    # --- flight recorder A/B: ring disarmed vs armed ------------------
    # The flight ring is *always on* by default (it is what makes a
    # worker crash explainable), so its cost is held to a hard <2%:
    # ``flight_off`` disarms the ring entirely, ``flight_on`` is the
    # default path every row above already ran.
    print("flight recorder overhead A/B (ring off vs on):", flush=True)
    max_flight_overhead_pct = 2.0
    obs_runtime.reset()
    obs_runtime.disable_flight()
    try:
        flight_off_row = _record(
            f"obs_overhead/{obs_subject}/{obs_analysis_name}/flight_off",
            run_obs,
            rounds,
        )
    finally:
        obs_runtime.reset()
    rows.append(flight_off_row)

    flight_on_row = _record(
        f"obs_overhead/{obs_subject}/{obs_analysis_name}/flight_on",
        run_obs,
        rounds,
    )
    flight_on_row["flight_events"] = len(obs_runtime.flight().events())
    obs_runtime.reset()
    rows.append(flight_on_row)

    flight_off_seconds = float(flight_off_row["min_seconds"])
    flight_on_seconds = float(flight_on_row["min_seconds"])
    flight_overhead_pct = (
        100.0 * (flight_on_seconds - flight_off_seconds) / flight_off_seconds
        if flight_off_seconds
        else 0.0
    )
    flight_on_row["overhead_pct_vs_flight_off"] = round(
        flight_overhead_pct, 2
    )
    if (
        flight_on_seconds - flight_off_seconds > slack_seconds
        and flight_overhead_pct > max_flight_overhead_pct
    ):
        raise SystemExit(
            f"obs_overhead: armed flight ring is "
            f"{flight_overhead_pct:.1f}% slower than disarmed "
            f"({flight_on_seconds:.6f}s vs {flight_off_seconds:.6f}s); "
            f"limit is {max_flight_overhead_pct:.1f}%"
        )
    print(
        f"  armed-ring overhead vs disarmed: {flight_overhead_pct:+.2f}% "
        f"(limit {max_flight_overhead_pct:.1f}%)",
        flush=True,
    )

    # --- analysis service: batch cold vs warm (the result-store path) --
    print("analysis service batch:", flush=True)
    import shutil
    import tempfile

    from repro.service import ResultStore, paper_campaign_jobs, run_batch

    if quick:
        jobs = paper_campaign_jobs(
            subjects=("GPL-like",), analyses=("possible_types",)
        )
    else:
        jobs = paper_campaign_jobs()
    store_root = Path(tempfile.mkdtemp(prefix="spllift-bench-store-"))
    store = ResultStore(store_root)
    try:
        # Cold: clear the store first so every round actually solves.
        # In-process execution (use_pool=False) keeps the timing about the
        # solver + store, not process spawn overhead.
        def run_batch_cold() -> Dict[str, int]:
            store.clear()
            report = run_batch(jobs, store=store, use_pool=False)
            return {"computed": report.computed, "cached": report.cached}

        rows.append(
            _record(f"service/batch_cold/{len(jobs)}_jobs", run_batch_cold, rounds)
        )

        def run_batch_warm() -> Dict[str, int]:
            report = run_batch(jobs, store=store, use_pool=False)
            return {"computed": report.computed, "cached": report.cached}

        rows.append(
            _record(f"service/batch_warm/{len(jobs)}_jobs", run_batch_warm, rounds)
        )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    # --- analysis service: fleet of schedulers over a shared backend --
    # Two independent scheduler/client instances against one sqlite file
    # and one served HTTP store: the first cold-populates, the second
    # must be served 100% from the shared store.
    print("analysis service fleet (shared backends):", flush=True)
    import threading

    from repro.service import make_server, open_store

    fleet_root = Path(tempfile.mkdtemp(prefix="spllift-bench-fleet-"))
    server = None
    server_thread = None
    try:
        db_path = fleet_root / "fleet.db"
        served = open_store(f"sqlite://{fleet_root / 'served.db'}")
        server = make_server(served, port=0)
        host, port = server.server_address
        server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        server_thread.start()

        fleet_backends = (
            ("sqlite", lambda: open_store(f"sqlite://{db_path}")),
            ("http", lambda: open_store(f"http://{host}:{port}")),
        )
        for backend_name, open_client in fleet_backends:
            client_a, client_b = open_client(), open_client()

            def run_fleet_cold(client=client_a) -> Dict[str, int]:
                client.clear()
                report = run_batch(jobs, store=client, use_pool=False)
                return {"computed": report.computed, "cached": report.cached}

            cold_row = _record(
                f"service/fleet_cold/{backend_name}/{len(jobs)}_jobs",
                run_fleet_cold,
                rounds,
            )
            rows.append(cold_row)

            def run_fleet_warm(client=client_b) -> Dict[str, int]:
                report = run_batch(jobs, store=client, use_pool=False)
                if report.cached != len(jobs):
                    raise SystemExit(
                        f"fleet_warm/{backend_name}: second scheduler hit "
                        f"{report.cached}/{len(jobs)} records"
                    )
                return {"computed": report.computed, "cached": report.cached}

            warm_row = _record(
                f"service/fleet_warm/{backend_name}/{len(jobs)}_jobs",
                run_fleet_warm,
                rounds,
            )
            cold_seconds = float(cold_row["min_seconds"])
            warm_seconds = float(warm_row["min_seconds"])
            if warm_seconds:
                warm_row["speedup_vs_cold"] = round(
                    cold_seconds / warm_seconds, 2
                )
            rows.append(warm_row)
    finally:
        if server is not None:
            server.shutdown()
        if server_thread is not None:
            server_thread.join(timeout=5)
        shutil.rmtree(fleet_root, ignore_errors=True)

    # --- incremental re-solve: one method edited out of N --------------
    # Per subject: a sqlite summary store is populated from the pristine
    # source, one method is edited (smallest dirty closure — the 1-of-N
    # developer-edit scenario), and the edited subject is solved cold
    # (no store) vs warm (summaries injected).  Warm rounds each start
    # from a fresh copy of the populated store, because a warm solve
    # harvests the recomputed methods under their *edited* digests —
    # reusing those in round 2 would measure a 0-edit re-solve instead.
    # Digest identity between cold and warm is asserted, not assumed.
    print("incremental re-solve (1-method edit, cold vs warm):", flush=True)
    from repro.ide.summaries import summary_cache_for
    from repro.spl.edits import edited_product_line

    inc_subjects = (
        ("GPL-like",)
        if quick
        else ("BerkeleyDB-like", "GPL-like", "MM08-like")
    )
    inc_analysis_name, inc_analysis_class = (
        "reaching_definitions",
        ReachingDefinitionsAnalysis,
    )
    builders = dict(SUBJECT_BUILDERS)
    for subject_name in inc_subjects:
        builder = builders[subject_name]
        inc_root = Path(tempfile.mkdtemp(prefix="spllift-bench-inc-"))
        try:
            populated_db = inc_root / "summaries.db"
            pristine = builder()
            n_methods = len(pristine.icfg.call_graph.reachable_methods)
            populate = SPLLift(
                inc_analysis_class(pristine.icfg),
                feature_model=pristine.feature_model,
            )
            populate.solve(
                summaries=summary_cache_for(
                    populate, open_store(f"sqlite://{populated_db}")
                )
            )
            # The store runs in WAL mode; fold the log into the main file
            # so the per-round file copies below carry every record.
            import sqlite3

            with sqlite3.connect(populated_db) as conn:
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            _, target, dirty = edited_product_line(builder())
            prefix = f"incremental/edit_1_of_{n_methods}/{subject_name}"
            digests: Dict[str, str] = {}

            def run_inc_cold(b=builder, t=target) -> Dict[str, int]:
                pl, _, _ = edited_product_line(b(), t)
                results = SPLLift(
                    inc_analysis_class(pl.icfg),
                    feature_model=pl.feature_model,
                ).solve()
                digests["cold"] = results.result_digest()
                return results.stats

            cold_row = _record(f"{prefix}/cold", run_inc_cold, rounds)
            rows.append(cold_row)

            def run_inc_warm(b=builder, t=target) -> Dict[str, int]:
                warm_db = inc_root / "warm.db"
                # Remove the previous round's database *and* its WAL/SHM
                # sidecars: sqlite would otherwise replay the stale log
                # over the fresh copy, perturbing the per-round store.
                for stale in (
                    warm_db,
                    warm_db.with_name("warm.db-wal"),
                    warm_db.with_name("warm.db-shm"),
                ):
                    stale.unlink(missing_ok=True)
                shutil.copyfile(populated_db, warm_db)
                pl, _, _ = edited_product_line(b(), t)
                spllift = SPLLift(
                    inc_analysis_class(pl.icfg),
                    feature_model=pl.feature_model,
                )
                results = spllift.solve(
                    summaries=summary_cache_for(
                        spllift, open_store(f"sqlite://{warm_db}")
                    )
                )
                digests["warm"] = results.result_digest()
                return results.stats

            warm_row = _record(f"{prefix}/warm", run_inc_warm, rounds)
            if digests["warm"] != digests["cold"]:
                raise SystemExit(
                    f"{prefix}: warm digest differs from cold reference"
                )
            warm_stats = warm_row["stats"]  # type: ignore[assignment]
            reused = warm_stats.get("summaries_reused", 0)
            recomputed = warm_stats.get("summaries_recomputed", 0)
            warm_row["analysis"] = inc_analysis_name
            warm_row["edited_method"] = target
            warm_row["dirty_methods"] = dirty
            warm_row["reuse_ratio"] = round(
                reused / max(1, reused + recomputed), 4
            )
            warm_seconds = float(warm_row["min_seconds"])
            if warm_seconds:
                warm_row["speedup_vs_cold"] = round(
                    float(cold_row["min_seconds"]) / warm_seconds, 2
                )
            rows.append(warm_row)
        finally:
            shutil.rmtree(inc_root, ignore_errors=True)

    # --- solver micro-benchmarks (binary IDE embedding vs direct IFDS)
    print("solver micro-benchmarks:", flush=True)
    product = derive_product(
        subjects["GPL-like"].ast,
        frozenset(subjects["GPL-like"].features_reachable),
    )
    product_icfg = ICFG.for_entry(lower_program(product))

    def run_ifds_direct() -> Dict[str, int]:
        solver = IFDSSolver(TaintAnalysis(product_icfg))
        solver.solve()
        return solver.stats

    def run_ifds_via_ide() -> Dict[str, int]:
        results = solve_ifds_via_ide(TaintAnalysis(product_icfg))
        del results
        return {}

    rows.append(_record("micro/ifds_direct/taint", run_ifds_direct, rounds))
    rows.append(
        _record("micro/ifds_via_ide_binary/taint", run_ifds_via_ide, rounds)
    )

    # --- BDD kernel micro-benchmark: deep variable chains -------------
    # A 5,000-variable conjunction chain plus node/model counting — the
    # workload that overflowed the recursion limit before the iterative
    # apply kernel.
    from repro.bdd import BDDManager

    def run_deep_chain() -> Dict[str, int]:
        manager = BDDManager()
        chain = manager.and_all(
            manager.var(f"v{i:04d}") for i in range(5000)
        )
        stats = manager.cache_stats()
        return {
            "chain_nodes": manager.node_count(chain),
            "model_count": manager.satcount(chain),
            "bdd_nodes": stats["unique_entries"],
            "apply_calls": stats["apply_calls"],
        }

    rows.append(_record("micro/bdd_kernel/deep_chain_5000", run_deep_chain, rounds))

    # --- BDD kernel micro-benchmark: unique-table churn ----------------
    # A 48-variable threshold function ("at least 16 of 48") built by
    # dynamic programming: ~1,300 applies whose intermediates intern and
    # abandon tens of thousands of distinct nodes — the find-or-create
    # path and its packed-key probes dominate.
    def run_unique_churn() -> Dict[str, int]:
        manager = BDDManager()
        xs = [manager.var(f"u{i:02d}") for i in range(48)]
        threshold = 16
        # counts[j] = BDD for "at least j of the variables seen so far".
        counts = [manager.true] + [manager.false] * threshold
        for x in xs:
            for j in range(threshold, 0, -1):
                counts[j] = manager.or_(
                    counts[j], manager.and_(x, counts[j - 1])
                )
        stats = manager.cache_stats()
        return {
            "result_nodes": manager.node_count(counts[threshold]),
            "bdd_nodes": stats["unique_entries"],
            "total_nodes": stats["nodes"],
            "apply_calls": stats["apply_calls"],
            "apply_cache_misses": stats["apply_cache_misses"],
        }

    rows.append(_record("micro/bdd_kernel/unique_churn", run_unique_churn, rounds))

    # --- BDD kernel micro-benchmark: apply storm ------------------------
    # 1,500 pseudo-random cubes over 14 variables (multiplicative-hash
    # literal selection, no RNG state) OR-ed into one accumulator: a
    # cache-hit-heavy apply mix — the computed-table probe is the cost.
    def run_apply_storm() -> Dict[str, int]:
        manager = BDDManager()
        xs = [manager.var(f"s{i:02d}") for i in range(14)]
        acc = manager.false
        for k in range(1500):
            bits = (k * 0x9E3779B1) & 0x3FFF
            cube = manager.true
            for i in range(14):
                if bits >> i & 1:
                    literal = (
                        xs[i] if (bits >> ((i + 7) % 14)) & 1 else manager.not_(xs[i])
                    )
                    cube = manager.and_(cube, literal)
            acc = manager.or_(acc, cube)
        stats = manager.cache_stats()
        return {
            "result_nodes": manager.node_count(acc),
            "bdd_nodes": stats["unique_entries"],
            "apply_calls": stats["apply_calls"],
            "apply_cache_hits": stats["apply_cache_hits"],
            "apply_cache_misses": stats["apply_cache_misses"],
        }

    rows.append(_record("micro/bdd_kernel/apply_storm", run_apply_storm, rounds))

    # --- BDD kernel micro-benchmark: wide model counting ----------------
    # Repeated satcount over a ~4,000-node disjunction of pseudo-random
    # cubes over 20 variables; each round declares one more variable,
    # which (correctly) invalidates the count memo, so every round pays
    # the full `_satcount_raw` DAG walk.
    def run_satcount_wide() -> Dict[str, int]:
        manager = BDDManager()
        xs = [manager.var(f"w{i:02d}") for i in range(20)]
        acc = manager.false
        for k in range(500):
            bits = (k * 0x9E3779B1) & 0xFFFFF
            cube = manager.true
            for i in range(20):
                if bits >> i & 1:
                    literal = (
                        xs[i] if (bits >> ((i + 11) % 20)) & 1 else manager.not_(xs[i])
                    )
                    cube = manager.and_(cube, literal)
            acc = manager.or_(acc, cube)
        checksum = 0
        for round_index in range(50):
            manager.var(f"pad{round_index:02d}")
            checksum ^= manager.satcount(acc)
        stats = manager.cache_stats()
        return {
            "result_nodes": manager.node_count(acc),
            "bdd_nodes": stats["unique_entries"],
            "satcount_checksum_low": checksum & 0xFFFFFFFF,
            "apply_calls": stats["apply_calls"],
        }

    rows.append(_record("micro/bdd_kernel/satcount_wide", run_satcount_wide, rounds))
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_solver.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="timing rounds per benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one subject, one analysis — the CI smoke configuration",
    )
    parser.add_argument(
        "-j",
        "--parallel",
        type=int,
        default=4,
        help="worker count for the parallel solve / campaign rows "
        "(default 4)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=2.0,
        help="fail if the disabled-telemetry obs_overhead row is more than "
        "this many percent slower than the plain pass (default 2.0)",
    )
    parser.add_argument(
        "--stats-out",
        type=Path,
        default=None,
        help="also write the rows' work counters as a spllift-metrics/v1 "
        "snapshot (row.stat -> value) for scripts/compare_metrics.py",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")
    if args.parallel < 2:
        parser.error(f"--parallel must be >= 2, got {args.parallel}")
    if not args.output.parent.is_dir():
        # Fail before the (long) benchmark run, not after it.
        parser.error(f"output directory does not exist: {args.output.parent}")

    repo_root = Path(__file__).resolve().parent.parent
    rows = run_benchmarks(
        rounds=args.rounds,
        quick=args.quick,
        parallel=args.parallel,
        max_overhead_pct=args.max_overhead_pct,
    )
    import os

    report = {
        "schema": "bench_solver/v1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "git_revision": _git_revision(repo_root),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "rounds": args.rounds,
        "quick": args.quick,
        "parallel": args.parallel,
        "benchmarks": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.stats_out is not None:
        # Work counters only (wall times live in the main report): the
        # format compare_metrics.py consumes, so CI can gate counter
        # drift — e.g. a BDD-node or apply-miss blowup — independently
        # of machine speed.
        counters = {
            f"{row['benchmark']}.{stat}": value
            for row in rows
            for stat, value in sorted(row["stats"].items())
            if isinstance(value, int) and not isinstance(value, bool)
        }
        snapshot = {
            "schema": "spllift-metrics/v1",
            "source": "bench_solver",
            "git_revision": report["git_revision"],
            "metrics": {"counters": counters, "gauges": {}, "histograms": {}},
        }
        args.stats_out.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.stats_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
