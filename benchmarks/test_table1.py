"""Benchmark: regenerating Table 1 (benchmark key information).

Times the metric computation per subject — notably the BDD-based valid-
configuration count, which replaces the paper's enumerate-and-check (the
step that made BerkeleyDB's count "unknown" there).
"""

import pytest

from repro.experiments.table1 import Table1Row, render_table1, run_table1

SUBJECT_NAMES = ("BerkeleyDB-like", "GPL-like", "Lampiro-like", "MM08-like")


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_valid_configuration_count(benchmark, subjects, name):
    product_line = subjects[name]
    count = benchmark(product_line.count_valid_configurations)
    assert count >= 1


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_reachable_features(benchmark, subjects, name):
    product_line = subjects[name]
    reachable = benchmark(lambda: product_line.features_reachable)
    assert len(reachable) >= 1


def test_full_table1(benchmark, subjects):
    """The whole Table 1 pipeline over all four subjects."""
    pairs = tuple((name, lambda pl=pl: pl) for name, pl in subjects.items())
    rows = benchmark.pedantic(run_table1, args=(pairs,), rounds=1, iterations=1)
    assert len(rows) == 4
    text = render_table1(rows)
    assert "Table 1" in text
