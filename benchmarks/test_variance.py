"""Benchmark: iteration-order variance (Section 6.2's observation).

Runs the same lifted analysis under several worklist orders and checks
the paper's two claims: identical results, and work (flow functions
constructed) varying with the order and correlating with time.
"""

import pytest

from repro.analyses import (
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.experiments.variance import run_variance


@pytest.mark.parametrize(
    "subject_name,analysis_class",
    [
        ("MM08-like", ReachingDefinitionsAnalysis),
        ("GPL-like", ReachingDefinitionsAnalysis),
        ("GPL-like", UninitializedVariablesAnalysis),
    ],
)
def test_order_variance(benchmark, subjects, subject_name, analysis_class):
    product_line = subjects[subject_name]
    report = benchmark.pedantic(
        run_variance,
        args=(product_line, analysis_class),
        kwargs={"random_orders": 6},
        rounds=1,
        iterations=1,
    )
    assert report.results_identical  # fixed point is order-independent
    assert report.work_spread >= 1.0
