"""Ablation: BDD variable ordering.

Section 5: "The size of a BDD can heavily depend on its variable ordering.
In our case, because we did not perceive the BDD operations to be a
bottleneck, we just pick one ordering and leave the search for an optimal
ordering to future work."  This ablation measures that choice: the lifted
analysis under declaration order, reversed order, and an interleaved
order, plus the feature-model BDD size under each.
"""

import pytest

from repro.analyses import UninitializedVariablesAnalysis
from repro.bdd import BDDManager
from repro.constraints import BddConstraintSystem
from repro.core import SPLLift
from repro.featuremodel.batory import to_constraint


def orderings(product_line):
    features = list(product_line.feature_model.feature_names)
    return {
        "declaration": features,
        "reversed": list(reversed(features)),
        "interleaved": features[::2] + features[1::2],
    }


@pytest.mark.parametrize("ordering_name", ("declaration", "reversed", "interleaved"))
@pytest.mark.parametrize("subject_name", ("GPL-like", "MM08-like"))
def test_variable_ordering(
    benchmark, subjects, ordering_name, subject_name
):
    product_line = subjects[subject_name]
    order = orderings(product_line)[ordering_name]

    def run():
        system = BddConstraintSystem(BDDManager(ordering=order))
        feature_model = to_constraint(product_line.feature_model, system)
        analysis = UninitializedVariablesAnalysis(product_line.icfg)
        return SPLLift(
            analysis, feature_model=feature_model, system=system
        ).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0


def test_feature_model_bdd_size_by_ordering(benchmark, subjects):
    """BDD node count of the GPL-like feature model per ordering."""
    product_line = subjects["GPL-like"]

    def run():
        sizes = {}
        for name, order in orderings(product_line).items():
            manager = BDDManager(ordering=order)
            system = BddConstraintSystem(manager)
            constraint = to_constraint(product_line.feature_model, system)
            sizes[name] = manager.node_count(constraint.node)
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(size > 0 for size in sizes.values())
