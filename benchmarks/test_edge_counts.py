"""Benchmark: Section 6.2's qualitative observations.

1. Analysis time correlates with the number of jump functions/edges
   constructed (paper: correlation > 0.99).
2. A2's full-configuration run constructs almost as many edges as
   SPLLIFT's single pass — SPLLIFT's extra per-edge constraint cost is
   what separates them, and it is low.
"""

import pytest

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines.a2 import A2Problem
from repro.core import SPLLift
from repro.experiments.qualitative import correlation
from repro.ifds import IFDSSolver

SUBJECT_NAMES = ("BerkeleyDB-like", "GPL-like", "Lampiro-like", "MM08-like")
ANALYSES = (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)


def test_edge_counts_and_correlation(benchmark, subjects):
    """Collect (edges, time) across all subject × analysis combinations in
    one benchmarked sweep, then check the correlation claim."""
    import time

    def sweep():
        samples = []
        for product_line in subjects.values():
            for analysis_class in ANALYSES:
                analysis = analysis_class(product_line.icfg)
                spllift = SPLLift(
                    analysis, feature_model=product_line.feature_model
                )
                started = time.perf_counter()
                results = spllift.solve()
                elapsed = time.perf_counter() - started
                samples.append(
                    (results.stats["jump_functions"], elapsed, results)
                )
        return samples

    samples = benchmark.pedantic(sweep, rounds=1, iterations=1)
    edges = [float(s[0]) for s in samples]
    times = [s[1] for s in samples]
    r = correlation(edges, times)
    # The paper reports > 0.99 on the JVM; allow slack for Python timer
    # noise but the correlation must be strong.
    assert r > 0.9, f"edges/time correlation too weak: {r:.3f}"


@pytest.mark.parametrize("subject_name", SUBJECT_NAMES)
def test_a2_full_config_edge_ratio(benchmark, subjects, subject_name):
    """SPLLIFT edges vs full-configuration A2 edges (ratio near 1)."""
    product_line = subjects[subject_name]
    analysis = ReachingDefinitionsAnalysis(product_line.icfg)

    def run():
        spllift_results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        solver = IFDSSolver(
            A2Problem(analysis, frozenset(product_line.features_reachable))
        )
        solver.solve()
        return spllift_results.stats["jump_functions"], solver.stats["path_edges"]

    spllift_edges, a2_edges = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = spllift_edges / a2_edges
    # "almost as many edges": same order of magnitude.
    assert 0.3 < ratio < 5.0, ratio
