#!/usr/bin/env python3
"""Emergent interfaces: what a feature provides to and requires from the
rest of the product line.

The application the paper highlights in Section 7 (Ribeiro et al.): when a
developer maintains feature code, an *emergent interface* lists the
data-flow dependencies crossing the feature boundary — computed on demand
by a feature-sensitive reaching-definitions analysis.  SPLLIFT's speed is
what makes this practical; here each dependency also carries the exact
feature constraint under which it exists.

Run:  python examples/emergent_interfaces.py
"""

from repro.core import compute_emergent_interface
from repro.featuremodel import parse_feature_model
from repro.spl import ProductLine

SOURCE = """\
class Cart {
    int total;
    int checkout(int base) {
        int amount = base;
        int rebate = 0;
        #ifdef (Discount)
        rebate = amount / 10;
        amount = amount - rebate;
        #endif
        #ifdef (Tax)
        amount = amount + tax(amount);
        #endif
        this.total = amount;
        print(amount);
        return amount;
    }
    int tax(int net) {
        return net / 5;
    }
}

class Main {
    void main() {
        Cart cart = new Cart();
        int paid = cart.checkout(100);
        print(paid);
    }
}
"""


def main() -> None:
    model = parse_feature_model(
        """
        featuremodel shop
        root Shop {
            optional Discount
            optional Tax
        }
        """
    )
    product_line = ProductLine("shop", SOURCE, model)
    print(SOURCE)
    for feature in ("Discount", "Tax"):
        interface = compute_emergent_interface(
            product_line.icfg,
            feature,
            feature_model=product_line.feature_model,
        )
        print(interface)
        print()
    print(
        "Reading the output: maintaining the Discount feature, the developer\n"
        "sees that `rebate`/`amount` computed inside Discount flow into the\n"
        "Tax computation, the field store and the prints — and under which\n"
        "feature combinations each dependency is live."
    )


if __name__ == "__main__":
    main()
