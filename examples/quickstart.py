#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces Figures 1 and 5 of the paper:

1. parse the product line of Figure 1a;
2. derive the single product of Figure 1b with the preprocessor;
3. run the *unmodified* IFDS taint analysis on that product (the
   traditional approach) — it finds the leak;
4. run SPLLIFT once on the whole product line — it reports the leak
   together with the exact feature constraint ¬F ∧ G ∧ ¬H;
5. add the feature model F ↔ G — the constraint becomes false, so the
   leak cannot happen in any valid product.

Run:  python examples/quickstart.py
"""

from repro import SPLLift, TaintAnalysis
from repro.baselines import solve_a2
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import derive_product, parse_program, pretty_print
from repro.spl import figure1, figure1_with_model


def main() -> None:
    product_line = figure1()
    print("=== The product line (Figure 1a) ===")
    print(product_line.source)

    # ------------------------------------------------------------------
    # Traditional approach: preprocess one product, analyze it.
    # ------------------------------------------------------------------
    product_ast = derive_product(product_line.ast, {"G"})
    print("=== One derived product, for ¬F ∧ G ∧ ¬H (Figure 1b) ===")
    print(pretty_print(product_ast))

    product_icfg = ICFG.for_entry(lower_program(product_ast))
    product_analysis = TaintAnalysis(product_icfg)
    product_results = IFDSSolver(product_analysis).solve()
    print("=== Traditional IFDS analysis of that single product ===")
    for stmt, fact in TaintAnalysis.sink_queries(product_icfg):
        leaked = fact in product_results.at(stmt)
        print(f"  {stmt.location}: secret printed? {leaked}")
    print("  ... but the traditional approach needs 2^3 = 8 such runs!\n")

    # ------------------------------------------------------------------
    # SPLLIFT: one single pass over the whole product line.
    # ------------------------------------------------------------------
    analysis = TaintAnalysis(product_line.icfg)  # the same, unmodified IFDS analysis
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    print("=== SPLLIFT: one pass over the whole product line ===")
    for stmt, fact in TaintAnalysis.sink_queries(analysis.icfg):
        constraint = results.constraint_for(stmt, fact)
        print(f"  {stmt.location}: secret may leak iff  {constraint}")
    print()

    # ------------------------------------------------------------------
    # With the feature model F <-> G the leak is impossible (Section 1).
    # ------------------------------------------------------------------
    constrained = figure1_with_model()
    analysis_fm = TaintAnalysis(constrained.icfg)
    results_fm = SPLLift(
        analysis_fm, feature_model=constrained.feature_model
    ).solve()
    print("=== Same analysis under the feature model F <-> G ===")
    for stmt, fact in TaintAnalysis.sink_queries(analysis_fm.icfg):
        constraint = results_fm.constraint_for(stmt, fact)
        print(
            f"  {stmt.location}: secret may leak iff  {constraint}"
            f"  (impossible: {constraint.is_false})"
        )
    print()

    # Cross-check with the configuration-specific oracle A2 (Section 6.1).
    print("=== Cross-check against the A2 oracle, config {G} ===")
    a2_results = solve_a2(analysis, {"G"})
    for stmt, fact in TaintAnalysis.sink_queries(analysis.icfg):
        a2_hit = fact in a2_results.at(stmt)
        lifted_hit = results.holds_in(stmt, fact, {"G"})
        print(f"  {stmt.location}: A2={a2_hit}  SPLLIFT={lifted_hit}")
        assert a2_hit == lifted_hit


if __name__ == "__main__":
    main()
