#!/usr/bin/env python3
"""Typestate on a product line: protocol violations per feature combination.

Typestate verification is one of the IFDS applications the paper cites
(Fink et al.; Naeem & Lhoták).  Here a stream protocol (open before
read/write, no use after close) is checked over a product line where the
opening, the eager close, and the reopening are all features — one
SPLLIFT pass yields the exact feature constraint of every possible
violation.

Run:  python examples/typestate_protocol.py
"""

from repro.analyses.typestate import FILE_PROTOCOL, TypestateAnalysis
from repro.core import SPLLift
from repro.featuremodel import parse_feature_model
from repro.spl import ProductLine

SOURCE = """\
class File {
    int open() { return 0; }
    int close() { return 0; }
    int read() { return 1; }
    int write() { return 0; }
}

class Logger {
    File sink;
    int log(File f, int value) {
        int written = f.write();
        return written + value;
    }
}

class Main {
    void main() {
        File f = new File();
        f.open();
        int data = f.read();
        #ifdef (EagerClose)
        f.close();
        #endif
        #ifdef (Audit)
        Logger logger = new Logger();
        int r = logger.log(f, data);
        #endif
        f.close();
    }
}
"""


def main() -> None:
    model = parse_feature_model(
        """
        featuremodel streams
        root Streams {
            optional EagerClose
            optional Audit
        }
        """
    )
    product_line = ProductLine("streams", SOURCE, model)
    print(SOURCE)

    analysis = TypestateAnalysis(product_line.icfg, FILE_PROTOCOL)
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()

    print("protocol:", FILE_PROTOCOL.name, "| states via", dict(FILE_PROTOCOL.transitions))
    print()
    print("possible protocol violations:")
    any_finding = False
    for stmt, fact in analysis.violation_queries():
        constraint = results.constraint_for(stmt, fact)
        if constraint.is_false:
            continue
        any_finding = True
        print(f"  after {stmt.location}: object {fact.local!r} in state "
              f"{fact.state!r}")
        print(f"      iff {constraint}")
    if not any_finding:
        print("  none (in any valid product)")
    print()
    print(
        "Reading the output: the write inside the Audit logger and the\n"
        "final close are both protocol errors exactly when EagerClose is\n"
        "enabled — the file was already closed.  Disable EagerClose (or\n"
        "exclude the combination in the feature model) and the constraints\n"
        "collapse to false."
    )


if __name__ == "__main__":
    main()
