#!/usr/bin/env python3
"""A device-driver product line: the bugs only some products have.

The scenario the paper's introduction motivates: conditional compilation
yields subtle mistakes that only manifest in particular products — here an
*uninitialized variable* that exists exactly when Buffering is disabled,
and an information leak that exists exactly when a SecureDevice is built
without Encryption.  SPLLIFT pinpoints both, with the exact feature
constraints, in one pass and without enumerating the 2^5 products.

Run:  python examples/device_product_line.py
"""

from repro import SPLLift, TaintAnalysis, UninitializedVariablesAnalysis
from repro.spl import device_spl


def main() -> None:
    product_line = device_spl()
    print("=== The device product line ===")
    print(product_line.source)
    print(
        "feature model:",
        product_line.feature_model.name,
        "| features:",
        ", ".join(product_line.feature_model.feature_names),
    )
    print(
        "valid configurations over reachable features:",
        product_line.count_valid_configurations(),
        "of",
        product_line.configurations_reachable,
    )
    print()

    # ------------------------------------------------------------------
    # Uninitialized variables: `flush` reads `pending`, which is only
    # assigned under Buffering.
    # ------------------------------------------------------------------
    uninit = UninitializedVariablesAnalysis(product_line.icfg)
    results = SPLLift(uninit, feature_model=product_line.feature_model).solve()
    print("=== Potentially uninitialized reads (with feature constraint) ===")
    for stmt, fact in uninit.use_queries():
        constraint = results.constraint_for(stmt, fact)
        if not constraint.is_false:
            print(f"  {stmt.location}: read of {fact} may be uninitialized iff")
            print(f"      {constraint}")
    print()

    # ------------------------------------------------------------------
    # Taint: SecureDevice.send leaks a secret unless Encryption is on.
    # ------------------------------------------------------------------
    taint = TaintAnalysis(product_line.icfg)
    taint_results = SPLLift(taint, feature_model=product_line.feature_model).solve()
    print("=== Secret-to-print flows (with feature constraint) ===")
    for stmt, fact in TaintAnalysis.sink_queries(taint.icfg):
        constraint = taint_results.constraint_for(stmt, fact)
        if not constraint.is_false:
            print(f"  {stmt.location}: {fact} may carry a secret iff")
            print(f"      {constraint}")
    print(
        "  (note: the constraint lacks `Secure` although only SecureDevice\n"
        "   leaks — the call graph is feature-INsensitive, so `d.send()`\n"
        "   conservatively dispatches to SecureDevice.send with constraint\n"
        "   true.  This is exactly the ArrayList/LinkedList imprecision the\n"
        "   paper documents in Section 5, 'Current Limitations'.)"
    )
    print()

    # Reachability as a side effect (Section 3.3): the statements of
    # SecureDevice.send are only reachable when Secure is enabled.
    print("=== Reachability constraints (Section 3.3 side effect) ===")
    secure_send = product_line.ir.method("SecureDevice.send")
    for instruction in secure_send.instructions:
        constraint = taint_results.reachability_of(instruction)
        print(f"  {instruction.location}: reachable iff {constraint}")


if __name__ == "__main__":
    main()
