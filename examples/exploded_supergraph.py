#!/usr/bin/env python3
"""Render the exploded super graphs of the paper's Figures 3 and 5.

- Figure 3: the plain IFDS exploded super graph of the single product for
  ¬F ∧ G ∧ ¬H (taint analysis);
- Figure 5: the *lifted* graph over the entire product line, with feature
  constraints on the conditional edges.

Writes ``figure3.dot`` and ``figure5.dot`` to the working directory
(render with ``dot -Tpdf figure3.dot -o figure3.pdf`` if Graphviz is
available) and prints a textual summary.

Run:  python examples/exploded_supergraph.py
"""

from repro import TaintAnalysis
from repro.core import LiftedProblem
from repro.constraints import BddConstraintSystem
from repro.ifds import build_exploded_graph
from repro.ir import ICFG, lower_program
from repro.minijava import derive_product
from repro.spl import figure1


def main() -> None:
    product_line = figure1()

    # ------------------------------------------------------------------
    # Figure 3: the single product's plain exploded super graph.
    # ------------------------------------------------------------------
    product_ast = derive_product(product_line.ast, {"G"})
    product_icfg = ICFG.for_entry(lower_program(product_ast))
    product_graph = build_exploded_graph(TaintAnalysis(product_icfg))
    with open("figure3.dot", "w") as handle:
        handle.write(product_graph.to_dot("figure3"))
    print(
        f"figure3.dot: {len(product_graph.nodes)} nodes, "
        f"{len(product_graph.edges)} edges (product for ¬F ∧ G ∧ ¬H)"
    )

    # ------------------------------------------------------------------
    # Figure 5: the lifted graph over the whole product line.
    # ------------------------------------------------------------------
    system = BddConstraintSystem()
    analysis = TaintAnalysis(product_line.icfg)
    lifted = LiftedProblem(analysis, system)

    def constraint_label(kind, stmt, fact, succ, succ_fact) -> str:
        if kind == "normal":
            edge = lifted.edge_normal(stmt, fact, succ, succ_fact)
        elif kind == "call-to-return":
            edge = lifted.edge_call_to_return(stmt, fact, succ, succ_fact)
        else:
            # call/return edges: label with the call's annotation
            constraint = lifted.constraint_of(stmt)
            return "" if constraint.is_true else str(constraint)
        constraint = edge.constraint
        return "" if constraint.is_true else str(constraint)

    lifted_graph = build_exploded_graph(lifted, edge_labels=constraint_label)
    with open("figure5.dot", "w") as handle:
        handle.write(lifted_graph.to_dot("figure5"))
    print(
        f"figure5.dot: {len(lifted_graph.nodes)} nodes, "
        f"{len(lifted_graph.edges)} edges (whole product line, lifted)"
    )

    print("\nConditional edges of the lifted graph (Figure 5):")
    for edge in lifted_graph.edges:
        if edge.label:
            print(f"  {edge}")


if __name__ == "__main__":
    main()
