#!/usr/bin/env python3
"""Lift your own analysis — without changing a single line of it.

The paper's central promise: *any* IFDS analysis can be reused on product
lines as-is.  This example defines a brand-new analysis (constant-zero
propagation: "local x is definitely 0"), runs it the traditional way on a
product, then hands the very same class to SPLLIFT.

Run:  python examples/custom_analysis.py
"""

from typing import Iterable

from repro import SPLLift
from repro.analyses.facts import LocalFact
from repro.ifds import Identity, IFDSProblem, IFDSSolver, Lambda, ZERO
from repro.ir import Assign, Const, ICFG, Invoke, LocalRef, lower_program
from repro.minijava import derive_product, parse_program
from repro.spl import ProductLine
from repro.featuremodel import parse_feature_model


class ZeroAnalysis(IFDSProblem):
    """IFDS analysis: which locals are definitely assigned the literal 0?

    A deliberately small analysis — gen on ``x = 0``, transfer on copies,
    kill on any other assignment — but fully inter-procedural via the
    default identity call flows being overridden below.
    """

    def normal_flow(self, stmt, succ):
        if isinstance(stmt, Assign):
            target = LocalFact(stmt.target)
            rvalue = stmt.rvalue

            def flow(fact) -> Iterable:
                if fact is ZERO:
                    if rvalue == Const(0):
                        return (ZERO, target)
                    return (ZERO,)
                if fact == target:
                    return ()
                if isinstance(rvalue, LocalRef) and fact == LocalFact(rvalue.name):
                    return (fact, target)
                return (fact,)

            return Lambda(flow)
        return Identity()

    def call_flow(self, call, callee):
        def flow(fact):
            if fact is ZERO:
                # Passing the literal 0 makes the formal definitely zero.
                zeros = [
                    LocalFact(param)
                    for arg, param in zip(call.args, callee.params)
                    if arg == Const(0)
                ]
                return (ZERO, *zeros)
            targets = []
            for arg, param in zip(call.args, callee.params):
                if isinstance(arg, LocalRef) and fact == LocalFact(arg.name):
                    targets.append(LocalFact(param))
            return targets

        return Lambda(flow)

    def return_flow(self, call, callee, exit_stmt, return_site):
        returned = getattr(exit_stmt, "value", None)

        def flow(fact):
            if fact is ZERO:
                return (ZERO,)
            if (
                call.result is not None
                and isinstance(returned, LocalRef)
                and fact == LocalFact(returned.name)
            ):
                return (LocalFact(call.result),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(self, call, return_site):
        def flow(fact):
            if fact is ZERO:
                return (ZERO,)
            if call.result is not None and fact == LocalFact(call.result):
                return ()
            return (fact,)

        return Lambda(flow)


SOURCE = """\
class Main {
    void main() {
        int a = 0;
        int b = 7;
        #ifdef (Reset)
        b = 0;
        #endif
        int c = pass(b);
        print(c);
    }
    int pass(int p) {
        #ifdef (Override)
        p = 0;
        #endif
        return p;
    }
}
"""


def main() -> None:
    model = parse_feature_model(
        "featuremodel zeros root Zeros { optional Reset optional Override }"
    )
    product_line = ProductLine("zeros", SOURCE, model)

    # Traditional use on one product: nothing about the class is SPL-aware.
    product = derive_product(product_line.ast, {"Reset"})
    product_icfg = ICFG.for_entry(lower_program(product))
    plain_results = IFDSSolver(ZeroAnalysis(product_icfg)).solve()
    print_stmt = next(
        s for s in product_icfg.reachable_instructions() if type(s).__name__ == "Print"
    )
    print(
        "product {Reset}: c is definitely-zero at print?",
        LocalFact("c") in plain_results.at(print_stmt),
    )

    # Lifted use on the whole product line: the same class, unchanged.
    analysis = ZeroAnalysis(product_line.icfg)
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    lifted_print = next(
        s
        for s in analysis.icfg.reachable_instructions()
        if type(s).__name__ == "Print"
    )
    constraint = results.constraint_for(lifted_print, LocalFact("c"))
    print(f"whole SPL: c is definitely-zero at print iff  {constraint}")
    print(
        "(expected: Zeros & (Reset | Override) — either resetting b or "
        "overriding p,\n under the mandatory root feature Zeros)"
    )


if __name__ == "__main__":
    main()
