#!/usr/bin/env python
"""CI smoke for incremental re-analysis through a shared summary store.

One subject, all three paper analyses, any store backend::

    PYTHONPATH=src python scripts/incremental_smoke.py --store sqlite:///tmp/inc.db
    PYTHONPATH=src python scripts/incremental_smoke.py --store http://127.0.0.1:8766

Flow: (1) cold solves of the pristine subject populate the store with
method summaries; (2) a scripted one-method edit (``repro.spl.edits``);
(3) cold solves of the edited subject establish the reference digests;
(4) warm incremental solves of the same edited subject through the
store.  The gate: warm digests bit-identical to cold, ``summaries_reused
> 0`` for every analysis, and reuse ratio ≥ 0.8.

``--metrics OUT`` writes a ``spllift-metrics/v1`` snapshot of the *warm
phase only* (the registry is reset between phases), so
``scripts/compare_metrics.py --only 'ide.solver.summaries_*'`` can pin
the reuse counters against a committed baseline — they are a
deterministic property of the fixed point, not of timing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyses import PAPER_ANALYSES
from repro.core import SPLLift
from repro.ide.summaries import summary_cache_for
from repro.obs import runtime as obs
from repro.service import open_store
from repro.spl.benchmarks import paper_subjects
from repro.spl.edits import edited_product_line

SUBJECTS = {
    name.split("-")[0].lower(): (name, builder)
    for name, builder in paper_subjects()
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store",
        required=True,
        help="summary store spec: a path, sqlite://file.db, or http://host:port",
    )
    parser.add_argument(
        "--subject",
        default="gpl",
        choices=sorted(SUBJECTS),
        help="paper subject to solve (default: gpl)",
    )
    parser.add_argument(
        "--metrics",
        help="write a spllift-metrics/v1 snapshot of the warm phase here",
    )
    args = parser.parse_args(argv)

    subject_name, builder = SUBJECTS[args.subject]
    store = open_store(args.store)

    def lift(product_line, analysis_cls):
        return SPLLift(
            analysis_cls(product_line.icfg),
            feature_model=product_line.feature_model,
        )

    # Phase 1: populate the store from the pristine subject.
    for analysis_name, analysis_cls in PAPER_ANALYSES:
        solver = lift(builder(), analysis_cls)
        solver.solve(summaries=summary_cache_for(solver, store))

    # Phase 2+3: scripted edit, then cold reference digests.
    edited, target, dirty = edited_product_line(builder())
    print(f"{subject_name}: edited {target} (dirty closure: {dirty} methods)")
    cold_digests = {}
    for analysis_name, analysis_cls in PAPER_ANALYSES:
        fresh_edit, _, _ = edited_product_line(builder())
        cold_digests[analysis_name] = (
            lift(fresh_edit, analysis_cls).solve().result_digest()
        )

    # Phase 4: warm incremental solves, counters isolated to this phase.
    obs.reset()
    failures = 0
    for analysis_name, analysis_cls in PAPER_ANALYSES:
        fresh_edit, _, _ = edited_product_line(builder())
        solver = lift(fresh_edit, analysis_cls)
        warm = solver.solve(summaries=summary_cache_for(solver, store))
        stats = warm.stats
        reused = stats.get("summaries_reused", 0)
        recomputed = stats.get("summaries_recomputed", 0)
        ratio = reused / max(1, reused + recomputed)
        ok = warm.result_digest() == cold_digests[analysis_name]
        print(
            f"  {analysis_name}: digest "
            + ("identical" if ok else "MISMATCH")
            + f", {reused} reused / {recomputed} recomputed "
            f"/ {stats.get('summaries_invalidated', 0)} invalidated "
            f"(ratio {ratio:.2f})"
        )
        if not ok:
            failures += 1
        if reused == 0:
            failures += 1
            print(f"  {analysis_name}: FAIL — no summaries reused")
        if ratio < 0.8:
            failures += 1
            print(f"  {analysis_name}: FAIL — reuse ratio {ratio:.2f} < 0.8")

    if args.metrics:
        report = {
            "schema": "spllift-metrics/v1",
            "run_id": obs.run_id(),
            "metrics": obs.metrics().describe(),
        }
        Path(args.metrics).write_text(
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )
        print(f"warm-phase metrics written to {args.metrics}")

    print(
        "incremental smoke: "
        + ("OK" if not failures else f"{failures} failure(s)")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
