#!/usr/bin/env python
"""Diff two ``--metrics`` JSON snapshots and fail on counter drift.

``BENCH_solver.json`` tracks wall time; this script is the equivalent
gate for the *work* counters behind it — jump-function blowup, BDD node
or apply-miss explosions show up here even when a fast machine hides
them from the timing numbers.

Counters and gauges present in both snapshots are compared by relative
drift ``(current - baseline) / baseline``; histograms by their
``count``.  A comparison fails when drift exceeds the threshold in
either direction (a large unexplained *drop* usually means work was
silently skipped).  Thresholds are relative fractions: ``0.1`` = ±10%.

Usage::

    python scripts/compare_metrics.py baseline.json current.json
    python scripts/compare_metrics.py base.json cur.json --threshold 0.05
    python scripts/compare_metrics.py base.json cur.json \\
        --threshold-for 'bdd.*=0.5' --threshold-for 'ide.jumps=0.0' \\
        --only 'bdd.*' --ignore '*.wall_us'

Per-name thresholds are fnmatch patterns; the most specific match wins
(longest pattern, ties broken in favor of later flags).  Keys present
in only one snapshot are reported (marked ``MISSING``, printed even
under ``--quiet``, and counted separately in the verdict) and fail the
comparison unless ``--allow-missing`` is given.  Exit status 0 when
within thresholds, 1 on drift or missing keys, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.obs.regress import (
        compare,
        load_snapshot,
        parse_threshold_overrides,
    )
except ImportError:  # CI invokes this script without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.regress import (
        compare,
        load_snapshot,
        parse_threshold_overrides,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline --metrics snapshot")
    parser.add_argument("current", help="current --metrics snapshot")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="default relative drift threshold (fraction; default 0.1 = ±10%%)",
    )
    parser.add_argument(
        "--threshold-for",
        action="append",
        default=[],
        metavar="PATTERN=FRACTION",
        help="per-counter threshold override (fnmatch pattern; repeatable)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="PATTERN",
        help="compare only matching names (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="skip matching names (repeatable)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="report but do not fail on keys present in only one snapshot",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only violations and the verdict line",
    )
    args = parser.parse_args(argv)

    try:
        overrides = parse_threshold_overrides(args.threshold_for)
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"compare_metrics: {error}", file=sys.stderr)
        return 2

    violations, report = compare(
        baseline,
        current,
        args.threshold,
        overrides,
        args.only,
        args.ignore,
        args.allow_missing,
    )
    for line in report:
        if not args.quiet or line.endswith(("DRIFT", "MISSING")):
            print(line)
    compared = sum(1 for line in report if "->" in line)
    missing = sum(1 for line in report if ": missing from" in line)
    scope = f"{compared} metric(s) compared"
    if missing:
        scope += f", {missing} missing"
    print(
        f"compare_metrics: {scope}: "
        + ("OK" if not violations else f"{len(violations)} violation(s)")
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
