#!/usr/bin/env python
"""Diff two ``--metrics`` JSON snapshots and fail on counter drift.

``BENCH_solver.json`` tracks wall time; this script is the equivalent
gate for the *work* counters behind it — jump-function blowup, BDD node
or apply-miss explosions show up here even when a fast machine hides
them from the timing numbers.

Counters and gauges present in both snapshots are compared by relative
drift ``(current - baseline) / baseline``; histograms by their
``count``.  A comparison fails when drift exceeds the threshold in
either direction (a large unexplained *drop* usually means work was
silently skipped).  Thresholds are relative fractions: ``0.1`` = ±10%.

Usage::

    python scripts/compare_metrics.py baseline.json current.json
    python scripts/compare_metrics.py base.json cur.json --threshold 0.05
    python scripts/compare_metrics.py base.json cur.json \\
        --threshold-for 'bdd.*=0.5' --threshold-for 'ide.jumps=0.0' \\
        --only 'bdd.*' --ignore '*.wall_us'

Per-name thresholds are fnmatch patterns; the most specific match wins
(longest pattern, ties broken in favor of later flags).  Keys present
in only one snapshot are reported (marked ``MISSING``, printed even
under ``--quiet``, and counted separately in the verdict) and fail the
comparison unless ``--allow-missing`` is given.  Exit status 0 when
within thresholds, 1 on drift or missing keys, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Dict, List, Optional, Tuple

#: Sections of a snapshot's ``metrics`` object and the scalar compared.
_SECTIONS = ("counters", "gauges", "histograms")


def load_snapshot(path: str) -> Dict[str, float]:
    """Flatten a ``--metrics`` file into ``name -> scalar``.

    Counter/gauge values map directly; histograms contribute their
    sample ``count`` under ``<name>.count``.
    """
    with open(path) as handle:
        document = json.load(handle)
    metrics = document.get("metrics", document)
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: no metrics object found")
    flat: Dict[str, float] = {}
    for section in _SECTIONS:
        entries = metrics.get(section, {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: metrics.{section} is not an object")
        for name, value in entries.items():
            if section == "histograms":
                if isinstance(value, dict) and isinstance(
                    value.get("count"), (int, float)
                ):
                    flat[f"{name}.count"] = float(value["count"])
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[name] = float(value)
    return flat


def parse_threshold_overrides(specs: List[str]) -> List[Tuple[str, float]]:
    """Parse repeated ``PATTERN=FRACTION`` flags (validated)."""
    overrides: List[Tuple[str, float]] = []
    for spec in specs:
        pattern, sep, raw = spec.rpartition("=")
        if not sep or not pattern:
            raise ValueError(f"bad --threshold-for {spec!r}: expected NAME=FRACTION")
        try:
            fraction = float(raw)
        except ValueError:
            raise ValueError(f"bad --threshold-for {spec!r}: {raw!r} is not a number")
        if fraction < 0:
            raise ValueError(f"bad --threshold-for {spec!r}: threshold must be >= 0")
        overrides.append((pattern, fraction))
    return overrides


def threshold_for(
    name: str, default: float, overrides: List[Tuple[str, float]]
) -> float:
    """Most specific matching override (longest pattern, later flags win)."""
    best: Optional[Tuple[int, int]] = None
    chosen = default
    for position, (pattern, fraction) in enumerate(overrides):
        if fnmatch.fnmatchcase(name, pattern):
            rank = (len(pattern), position)
            if best is None or rank >= best:
                best = rank
                chosen = fraction
    return chosen


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    default_threshold: float,
    overrides: List[Tuple[str, float]],
    only: List[str],
    ignore: List[str],
    allow_missing: bool,
) -> Tuple[List[str], List[str]]:
    """Returns ``(violations, report_lines)``."""

    def selected(name: str) -> bool:
        if only and not any(fnmatch.fnmatchcase(name, p) for p in only):
            return False
        return not any(fnmatch.fnmatchcase(name, p) for p in ignore)

    violations: List[str] = []
    report: List[str] = []
    names = sorted(set(baseline) | set(current))
    for name in names:
        if not selected(name):
            continue
        in_base, in_cur = name in baseline, name in current
        if not (in_base and in_cur):
            side = "baseline" if not in_base else "current"
            line = f"{name}: missing from {side}"
            report.append(line + ("" if allow_missing else "  MISSING"))
            if not allow_missing:
                violations.append(line)
            continue
        base, cur = baseline[name], current[name]
        limit = threshold_for(name, default_threshold, overrides)
        if base == cur:
            drift = 0.0
        elif base == 0.0:
            drift = float("inf")
        else:
            drift = (cur - base) / abs(base)
        ok = abs(drift) <= limit
        drift_text = f"{drift:+.1%}" if drift not in (float("inf"),) else "+inf"
        line = (
            f"{name}: {base:g} -> {cur:g} ({drift_text}, limit ±{limit:.1%})"
        )
        report.append(line + ("" if ok else "  DRIFT"))
        if not ok:
            violations.append(line)
    return violations, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline --metrics snapshot")
    parser.add_argument("current", help="current --metrics snapshot")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="default relative drift threshold (fraction; default 0.1 = ±10%%)",
    )
    parser.add_argument(
        "--threshold-for",
        action="append",
        default=[],
        metavar="PATTERN=FRACTION",
        help="per-counter threshold override (fnmatch pattern; repeatable)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="PATTERN",
        help="compare only matching names (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="skip matching names (repeatable)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="report but do not fail on keys present in only one snapshot",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only violations and the verdict line",
    )
    args = parser.parse_args(argv)

    try:
        overrides = parse_threshold_overrides(args.threshold_for)
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"compare_metrics: {error}", file=sys.stderr)
        return 2

    violations, report = compare(
        baseline,
        current,
        args.threshold,
        overrides,
        args.only,
        args.ignore,
        args.allow_missing,
    )
    for line in report:
        if not args.quiet or line.endswith(("DRIFT", "MISSING")):
            print(line)
    compared = sum(1 for line in report if "->" in line)
    missing = sum(1 for line in report if ": missing from" in line)
    scope = f"{compared} metric(s) compared"
    if missing:
        scope += f", {missing} missing"
    print(
        f"compare_metrics: {scope}: "
        + ("OK" if not violations else f"{len(violations)} violation(s)")
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
