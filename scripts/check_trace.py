#!/usr/bin/env python
"""Validate a trace file written by ``--trace`` (the CI telemetry gate).

Checks, per Chrome ``trace_event`` semantics:

- every event is an object with ``name``/``ph``/``ts``/``pid``/``tid``
  and a known phase (``B``/``E``/``i``/``M``/``X``);
- timestamps are numeric, non-negative and **monotonic per (pid, tid)
  track** (the writer sorts globally, so this also holds globally);
- ``B``/``E`` events nest properly per track: every ``E`` matches the
  name of the innermost open ``B``, and no span is left open at the end
  (balanced spans);
- the file parses as strict JSON *and* line-wise (one event per line),
  the dual format ``repro.obs.trace.write_trace`` promises.

With ``--folded`` the file is instead validated as folded-stack output
(``spllift trace summary --folded``): every line must be
``frame[;frame...] value`` with non-empty frames, no whitespace inside
the stack, and a positive integer value — the format ``flamegraph.pl``
consumes.

With ``--flight`` the file is validated as a ``spllift-flight/v1``
crash dump — or a ``spllift-batch-report/v1`` report, in which case
every attached per-job flight dump is validated.  Each dump must name
the in-flight job, carry monotonically-sequenced events within the ring
capacity, and keep its open-span stack well-formed — the CI gate behind
the flight recorder: a worker SIGKILLed mid-batch must still leave a
usable postmortem.

Usage::

    PYTHONPATH=src python scripts/check_trace.py trace.json
    PYTHONPATH=src python scripts/check_trace.py trace.json --min-events 10
    PYTHONPATH=src python scripts/check_trace.py trace.folded --folded
    PYTHONPATH=src python scripts/check_trace.py report.json --flight

Exit status 0 when the trace is well-formed, 1 otherwise (with one line
per violation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

from repro.obs.trace import read_trace

KNOWN_PHASES = ("B", "E", "i", "M", "X")
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def check_trace(path: str, min_events: int = 1) -> List[str]:
    """All violations found in the trace at ``path`` (empty = valid)."""
    errors: List[str] = []

    # Dual-format check: strict JSON array, and one event per line.
    with open(path) as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    if not isinstance(document, list):
        return [f"top level must be a JSON array, got {type(document).__name__}"]
    body_lines = [
        line
        for line in text.splitlines()
        if line.strip() not in ("", "[", "]")
    ]
    if len(body_lines) != len(document):
        errors.append(
            f"expected one event per line: {len(document)} events "
            f"over {len(body_lines)} lines"
        )

    events = read_trace(path)
    span_events = [e for e in events if e.get("ph") in ("B", "E", "i", "X")]
    if len(span_events) < min_events:
        errors.append(
            f"expected at least {min_events} span event(s), "
            f"got {len(span_events)}"
        )

    last_ts: Dict[Tuple[int, int], float] = {}
    stacks: Dict[Tuple[int, int], List[str]] = {}
    for position, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                errors.append(f"event #{position} missing {key!r}: {event}")
                break
        else:
            ph = event["ph"]
            if ph not in KNOWN_PHASES:
                errors.append(f"event #{position} has unknown ph {ph!r}")
                continue
            ts = event["ts"]
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event #{position} has bad ts {ts!r}")
                continue
            if ph == "M":
                continue
            track = (event["pid"], event["tid"])
            if ts < last_ts.get(track, float("-inf")):
                errors.append(
                    f"event #{position} ({event['name']}): non-monotonic ts "
                    f"{ts} on track {track} (previous {last_ts[track]})"
                )
            last_ts[track] = ts
            if ph == "B":
                stacks.setdefault(track, []).append(str(event["name"]))
            elif ph == "E":
                stack = stacks.get(track)
                if not stack:
                    errors.append(
                        f"event #{position}: E {event['name']!r} with no "
                        f"open span on track {track}"
                    )
                else:
                    opened = stack.pop()
                    if opened != event["name"]:
                        errors.append(
                            f"event #{position}: E {event['name']!r} closes "
                            f"B {opened!r} on track {track} (bad nesting)"
                        )
    for track, stack in stacks.items():
        if stack:
            errors.append(f"unbalanced spans left open on track {track}: {stack}")
    return errors


def check_folded(path: str, min_stacks: int = 1) -> List[str]:
    """Violations of the folded-stack format at ``path`` (empty = valid)."""
    errors: List[str] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    stacks = 0
    seen: Dict[str, int] = {}
    for position, line in enumerate(lines):
        if not line.strip():
            errors.append(f"line {position + 1}: blank line")
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            errors.append(f"line {position + 1}: expected 'stack value': {line!r}")
            continue
        if not value.isdigit() or int(value) <= 0:
            errors.append(
                f"line {position + 1}: value must be a positive integer, "
                f"got {value!r}"
            )
        frames = stack.split(";")
        if any(not frame or any(ch.isspace() for ch in frame) for frame in frames):
            errors.append(
                f"line {position + 1}: empty or whitespace-bearing frame "
                f"in {stack!r}"
            )
        if stack in seen:
            errors.append(
                f"line {position + 1}: duplicate stack {stack!r} "
                f"(first on line {seen[stack] + 1})"
            )
        seen.setdefault(stack, position)
        stacks += 1
    if stacks < min_stacks:
        errors.append(f"expected at least {min_stacks} stack(s), got {stacks}")
    return errors


def check_flight(path: str, min_events: int = 1) -> Tuple[List[str], int]:
    """Violations in the flight dump(s) at ``path``, plus the dump count.

    Accepts a raw ``spllift-flight/v1`` dump or a batch report carrying
    per-job ``flight`` attachments (``load_flight_dump`` handles both).
    """
    from repro.obs.flight import FLIGHT_SCHEMA, load_flight_dump

    try:
        dumps = load_flight_dump(path)["dumps"]
    except (OSError, ValueError) as error:
        return [str(error)], 0

    errors: List[str] = []
    for index, dump in enumerate(dumps):
        where = f"dump #{index}"
        if dump.get("schema") != FLIGHT_SCHEMA:
            errors.append(f"{where}: bad schema {dump.get('schema')!r}")
        if not str(dump.get("reason") or "").strip():
            errors.append(f"{where}: missing crash reason")
        capacity = dump.get("capacity")
        if not isinstance(capacity, int) or capacity < 1:
            errors.append(f"{where}: bad ring capacity {capacity!r}")
            capacity = None

        job = dump.get("job")
        if not isinstance(job, dict) or not job.get("label"):
            errors.append(f"{where}: does not name the in-flight job")

        events = dump.get("events")
        if not isinstance(events, list):
            errors.append(f"{where}: events must be a list")
            continue
        if len(events) < min_events:
            errors.append(
                f"{where}: expected at least {min_events} event(s), "
                f"got {len(events)}"
            )
        if capacity is not None and len(events) > capacity:
            errors.append(
                f"{where}: {len(events)} events exceed ring "
                f"capacity {capacity}"
            )
        last_seq = None
        for position, event in enumerate(events):
            if not isinstance(event, dict):
                errors.append(f"{where}: event #{position} is not an object")
                continue
            for key in ("seq", "ts", "kind", "name"):
                if key not in event:
                    errors.append(
                        f"{where}: event #{position} missing {key!r}"
                    )
            seq = event.get("seq")
            if isinstance(seq, int):
                if last_seq is not None and seq <= last_seq:
                    errors.append(
                        f"{where}: event #{position} seq {seq} not "
                        f"increasing (previous {last_seq})"
                    )
                last_seq = seq
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(
                    f"{where}: event #{position} has bad ts {ts!r}"
                )

        open_spans = dump.get("open_spans")
        if not isinstance(open_spans, list):
            errors.append(f"{where}: open_spans must be a list")
        else:
            for position, span in enumerate(open_spans):
                if not isinstance(span, dict) or not span.get("name"):
                    errors.append(
                        f"{where}: open span #{position} has no name"
                    )
    return errors, len(dumps)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file written by --trace")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="require at least this many B/E/i/X events (default 1)",
    )
    parser.add_argument(
        "--folded",
        action="store_true",
        help="validate folded-stack output of `spllift trace summary "
        "--folded` instead of a Chrome trace",
    )
    parser.add_argument(
        "--flight",
        action="store_true",
        help="validate a spllift-flight/v1 crash dump (or the flight "
        "dumps attached to a batch report) instead of a Chrome trace",
    )
    args = parser.parse_args(argv)

    if args.flight:
        errors, dumps = check_flight(args.trace, min_events=args.min_events)
        for error in errors:
            print(f"check_trace: {error}")
        print(
            f"{args.trace}: {dumps} flight dump(s): "
            + ("OK" if not errors else f"{len(errors)} violation(s)")
        )
        return 1 if errors else 0

    if args.folded:
        errors = check_folded(args.trace, min_stacks=args.min_events)
        for error in errors:
            print(f"check_trace: {error}")
        print(
            f"{args.trace}: folded stacks: "
            + ("OK" if not errors else f"{len(errors)} violation(s)")
        )
        return 1 if errors else 0

    errors = check_trace(args.trace, min_events=args.min_events)
    for error in errors:
        print(f"check_trace: {error}")
    events = read_trace(args.trace)
    pids = sorted({e.get("pid") for e in events if e.get("ph") != "M"})
    print(
        f"{args.trace}: {len(events)} event(s), {len(pids)} process(es): "
        + ("OK" if not errors else f"{len(errors)} violation(s)")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
