#!/usr/bin/env python
"""Prove worklist-scheduling policies don't change analysis results.

Solves all 12 paper subject x analysis combinations once per worklist
order and asserts the canonical ``result_digest`` is bit-identical across
orders.  This is the regression gate behind the RPO scheduler: iteration
order may change how much work the IDE solver does, never what it
computes.

Usage::

    PYTHONPATH=src python scripts/check_digest_identity.py
    PYTHONPATH=src python scripts/check_digest_identity.py --orders fifo rpo
    PYTHONPATH=src python scripts/check_digest_identity.py --parallel 2
    PYTHONPATH=src python scripts/check_digest_identity.py --engine datalog
    PYTHONPATH=src python scripts/check_digest_identity.py --baseline digests.json
    PYTHONPATH=src python scripts/check_digest_identity.py --dump digests.json

``--parallel N`` additionally solves every combination with the
partitioned parallel solver (``solve(parallel=N)``) and asserts those
digests match the sequential reference too — the gate behind
``repro.core.parallel``.  ``--engine datalog`` re-solves every
combination with the lifted-Datalog evaluation engine and requires its
digests bit-identical to the tabulation reference — the cross-checking
gate behind ``repro.datalog``.  ``--telemetry`` re-solves with tracing and
metrics enabled (sequential, and parallel when ``--parallel`` is given)
and requires the digests to stay bit-identical — the gate behind
``repro.obs``: observing the solver must never change what it computes.
``--obs`` extends that gate to the full observability stack: one pass
with the flight recorder and a structured event log armed, and one pass
through a served HTTP store with a run id set (so trace-context
propagation headers ride every request) — all digests must stay
bit-identical to the bare reference.
``--backends`` routes the paper campaign through the batch scheduler
against a sqlite store and a served HTTP store, asserting (a) the
computed result digests match the direct-solve reference and (b) a
second run is served 100% from each store with identical digests — the
gate behind ``repro.service.backends``: where a result is stored must
never change what it says.  ``--incremental`` gates the incremental
solve path (``repro.ide.summaries``): per subject, populate a summary
store, apply a scripted one-method edit, and require the warm re-solve
bit-identical to a cold solve of the edited subject with a reuse ratio
of at least 0.8.  ``--baseline`` compares the first order's
digests against a saved snapshot (written by ``--dump``), catching
semantic drift between revisions, not just between orders.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from pathlib import Path

from repro.analyses import PAPER_ANALYSES
from repro.core import SPLLift
from repro.ide.solver import WORKLIST_ORDERS
from repro.obs import runtime as obs
from repro.spl.benchmarks import paper_subjects


def slug(analysis_name: str) -> str:
    return analysis_name.lower().replace(" ", "_")


def compute_digests(
    order: str, seed: int, parallel: int = 1, engine: str = None
) -> dict:
    digests = {}
    for subject_name, builder in paper_subjects():
        product_line = builder()
        for analysis_name, analysis_cls in PAPER_ANALYSES:
            results = SPLLift(
                analysis_cls(product_line.icfg),
                feature_model=product_line.feature_model,
            ).solve(
                worklist_order=order,
                order_seed=seed,
                parallel=parallel,
                engine=engine,
            )
            digests[f"{subject_name}/{slug(analysis_name)}"] = (
                results.result_digest()
            )
    return digests


def check_incremental(reference: dict, seed: int, parallel=None) -> int:
    """Gate the incremental solve path; count mismatches.

    For each of the 12 subject × analysis combinations, against a
    per-subject sqlite summary store:

    1. a *populate* solve of the pristine subject with the summary cache
       armed — its digest must equal the cold reference (arming the
       cache on a cold store must change nothing);
    2. a scripted one-method edit (``repro.spl.edits``), then a cold
       solve of the edited subject — the new reference;
    3. a *warm* incremental solve of the same edited subject — digest
       bit-identical to (2), with ``summaries_reused > 0`` and a reuse
       ratio ≥ 0.8 (the 1-of-N edit must be near-O(dirty) work);
    4. with ``--parallel N``: a parallel cold solve of the edited
       subject, also bit-identical (the incremental path itself is
       sequential; this pins warm-vs-parallel equality).
    """
    from repro.ide.summaries import summary_cache_for
    from repro.service import open_store
    from repro.spl.edits import edited_product_line

    failures = 0
    rows = 0
    with tempfile.TemporaryDirectory(prefix="spllift-incremental-") as tmp:
        for subject_name, builder in paper_subjects():
            store = open_store(f"sqlite://{Path(tmp) / subject_name}.db")
            for analysis_name, analysis_cls in PAPER_ANALYSES:
                key = f"{subject_name}/{slug(analysis_name)}"
                rows += 1

                def lift(product_line):
                    return SPLLift(
                        analysis_cls(product_line.icfg),
                        feature_model=product_line.feature_model,
                    )

                populate = lift(builder())
                populated = populate.solve(
                    order_seed=seed,
                    summaries=summary_cache_for(populate, store),
                ).result_digest()
                if populated != reference[key]:
                    failures += 1
                    print(
                        f"INCREMENTAL POPULATE MISMATCH {key}: "
                        f"{populated[:16]}… vs {reference[key][:16]}…"
                    )

                edited, target, dirty = edited_product_line(builder())
                cold = lift(edited).solve(order_seed=seed).result_digest()

                edited_again, _, _ = edited_product_line(builder())
                warm_solver = lift(edited_again)
                warm = warm_solver.solve(
                    order_seed=seed,
                    summaries=summary_cache_for(warm_solver, store),
                )
                stats = warm.stats
                reused = stats.get("summaries_reused", 0)
                recomputed = stats.get("summaries_recomputed", 0)
                ratio = reused / max(1, reused + recomputed)
                if warm.result_digest() != cold:
                    failures += 1
                    print(
                        f"INCREMENTAL MISMATCH {key} (edit {target}): "
                        f"warm={warm.result_digest()[:16]}… cold={cold[:16]}…"
                    )
                if reused == 0:
                    failures += 1
                    print(f"INCREMENTAL NO REUSE {key} (edit {target})")
                if ratio < 0.8:
                    failures += 1
                    print(
                        f"INCREMENTAL LOW REUSE {key} (edit {target}): "
                        f"{reused} reused / {recomputed} recomputed "
                        f"= {ratio:.2f} < 0.8"
                    )

                if parallel is not None:
                    par_edit, _, _ = edited_product_line(builder())
                    par = lift(par_edit).solve(
                        order_seed=seed, parallel=parallel
                    ).result_digest()
                    if par != cold:
                        failures += 1
                        print(
                            f"INCREMENTAL PARALLEL MISMATCH {key}: "
                            f"parallel={par[:16]}… cold={cold[:16]}…"
                        )
    suffix = (
        f", warm vs parallel={parallel} cold included"
        if parallel is not None
        else ""
    )
    print(
        f"{rows} digests cold vs incremental (1-method edit{suffix}): "
        + ("all identical" if not failures else f"{failures} failures")
    )
    return failures


def check_obs(reference: dict, order: str, seed: int) -> int:
    """Gate the observability stack; count mismatches.

    Two passes, both of which must be invisible in the results:

    1. flight recorder + structured event log armed (``enable_flight``
       + ``enable_log``), all 12 combinations re-solved in process;
    2. the paper campaign run against a served HTTP store with a run id
       set, so every store request carries the
       ``X-SPLLIFT-Run-Id``/``X-SPLLIFT-Parent-Span`` propagation
       headers and the server opens correlated request spans.
    """
    from repro.service import make_server, open_store, run_batch

    failures = 0
    with tempfile.TemporaryDirectory(prefix="spllift-obs-") as tmp:
        log_path = Path(tmp) / "events.jsonl"
        obs.reset()
        obs.enable_flight()
        obs.enable_log(log_path)
        try:
            observed = compute_digests(order, seed)
        finally:
            flight_events = len(obs.flight().events())
            log_lines = sum(
                1 for line in log_path.read_text().splitlines() if line
            )
            obs.disable_log()
            obs.reset()
        observed_failures = 0
        for key, digest in observed.items():
            if digest != reference[key]:
                observed_failures += 1
                print(
                    f"OBS MISMATCH {key}: observed={digest[:16]}… "
                    f"bare={reference[key][:16]}…"
                )
        failures += observed_failures
        print(
            f"{len(observed)} digests with flight recorder + event log "
            f"armed ({flight_events} ring events, {log_lines} log lines): "
            + (
                "all identical to bare"
                if not observed_failures
                else f"{observed_failures} mismatches"
            )
        )

        from repro.service import paper_campaign_jobs

        served = open_store(f"sqlite://{Path(tmp) / 'served.db'}")
        server = make_server(served, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        obs.reset()
        run = obs.ensure_run_id()
        batch_log = Path(tmp) / "batch-events.jsonl"
        obs.enable_log(batch_log)
        propagated_failures = 0
        try:
            report = run_batch(
                paper_campaign_jobs(),
                store=open_store(f"http://{host}:{port}"),
                max_workers=2,
            )
        finally:
            server.shutdown()
            thread.join(timeout=5)
            batch_log_lines = sum(
                1 for line in batch_log.read_text().splitlines() if line
            )
            obs.disable_log()
            obs.reset()
        for outcome in report.outcomes:
            key = f"{outcome.job.label}/{outcome.job.analysis}"
            expected = reference.get(key)
            if expected is None or outcome.result_digest != expected:
                propagated_failures += 1
                print(
                    f"OBS PROPAGATION MISMATCH {key}: "
                    f"{str(outcome.result_digest)[:16]}… vs "
                    f"{str(expected)[:16]}…"
                )
        failures += propagated_failures
        print(
            f"{len(report.outcomes)} digests via HTTP store with "
            f"trace-context propagation (run {run[:8]}…, "
            f"{batch_log_lines} log lines): "
            + (
                "all identical to bare"
                if not propagated_failures
                else f"{propagated_failures} mismatches"
            )
        )
    return failures


def check_backends(reference: dict) -> int:
    """Run the paper campaign through each store backend; count mismatches.

    For sqlite and HTTP each: a cold batch populates the store and its
    computed digests must match ``reference``; a warm batch must be
    served entirely from the store with the same digests.
    """
    from repro.service import make_server, open_store, paper_campaign_jobs

    jobs = paper_campaign_jobs()
    failures = 0

    def run_rounds(backend_name: str, store) -> int:
        from repro.service import run_batch

        bad = 0
        for phase in ("cold", "warm"):
            report = run_batch(jobs, store=store, max_workers=2)
            for outcome in report.outcomes:
                key = f"{outcome.job.label}/{outcome.job.analysis}"
                expected = reference.get(key)
                digest = outcome.result_digest
                if expected is None or digest != expected:
                    bad += 1
                    print(
                        f"BACKEND MISMATCH ({backend_name}, {phase}) {key}: "
                        f"{str(digest)[:16]}… vs {str(expected)[:16]}…"
                    )
            if phase == "warm" and report.cached != len(jobs):
                bad += 1
                print(
                    f"BACKEND MISS ({backend_name}): warm run served "
                    f"{report.cached}/{len(jobs)} from the store"
                )
        print(
            f"{len(jobs)} digests × cold+warm via {backend_name} store: "
            + ("all identical" if not bad else f"{bad} mismatches")
        )
        return bad

    with tempfile.TemporaryDirectory(prefix="spllift-backends-") as tmp:
        failures += run_rounds(
            "sqlite", open_store(f"sqlite://{Path(tmp) / 'fleet.db'}")
        )

        served = open_store(f"sqlite://{Path(tmp) / 'served.db'}")
        server = make_server(served, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            failures += run_rounds("http", open_store(f"http://{host}:{port}"))
        finally:
            server.shutdown()
            thread.join(timeout=5)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--orders",
        nargs="+",
        default=list(WORKLIST_ORDERS),
        choices=WORKLIST_ORDERS,
        help="worklist orders to compare (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="seed for the random order"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="also solve with the partitioned parallel solver "
        "(N worker processes) and require identical digests",
    )
    parser.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="also solve every combination with this evaluation engine "
        "(e.g. datalog) and require digests identical to the tabulation "
        "reference — the gate behind repro.datalog",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="also solve with tracing/metrics enabled and require digests "
        "identical to the untraced reference",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="also solve with the flight recorder and event log armed, "
        "and run the campaign through a served HTTP store with "
        "trace-context propagation headers, requiring identical digests",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="also run the campaign through the sqlite and HTTP store "
        "backends and require identical digests cold and warm",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="also gate the incremental solve path: populate a summary "
        "store, edit one method per subject, and require the warm "
        "re-solve bit-identical to a cold solve of the edited subject "
        "with reuse ratio >= 0.8 (uses --parallel for an extra "
        "parallel-cold comparison)",
    )
    parser.add_argument(
        "--baseline",
        help="JSON file of reference digests to compare the first order against",
    )
    parser.add_argument(
        "--dump", help="write the first order's digests to this JSON file"
    )
    args = parser.parse_args(argv)

    per_order = {order: compute_digests(order, args.seed) for order in args.orders}
    reference_order = args.orders[0]
    reference = per_order[reference_order]

    failures = 0
    for order, digests in per_order.items():
        for key, digest in digests.items():
            if digest != reference[key]:
                failures += 1
                print(
                    f"MISMATCH {key}: {order}={digest[:16]}… "
                    f"{reference_order}={reference[key][:16]}…"
                )
    print(
        f"{len(reference)} subject/analysis digests × "
        f"{len(args.orders)} orders ({', '.join(args.orders)}): "
        + ("all identical" if not failures else f"{failures} mismatches")
    )

    if args.parallel is not None:
        parallel_digests = compute_digests(
            reference_order, args.seed, parallel=args.parallel
        )
        parallel_failures = 0
        for key, digest in parallel_digests.items():
            if digest != reference[key]:
                parallel_failures += 1
                print(
                    f"PARALLEL MISMATCH {key}: "
                    f"parallel={digest[:16]}… sequential={reference[key][:16]}…"
                )
        failures += parallel_failures
        print(
            f"{len(parallel_digests)} digests with solve(parallel="
            f"{args.parallel}): "
            + (
                "all identical to sequential"
                if not parallel_failures
                else f"{parallel_failures} mismatches"
            )
        )

    if args.engine is not None:
        engine_digests = compute_digests(
            reference_order, args.seed, engine=args.engine
        )
        engine_failures = 0
        for key, digest in engine_digests.items():
            if digest != reference[key]:
                engine_failures += 1
                print(
                    f"ENGINE MISMATCH {key}: "
                    f"{args.engine}={digest[:16]}… "
                    f"tabulate={reference[key][:16]}…"
                )
        failures += engine_failures
        print(
            f"{len(engine_digests)} digests with engine={args.engine}: "
            + (
                "all identical to tabulation"
                if not engine_failures
                else f"{engine_failures} mismatches"
            )
        )

    if args.telemetry:
        modes = [("sequential", 1)]
        if args.parallel is not None:
            modes.append((f"parallel={args.parallel}", args.parallel))
        for mode_name, workers in modes:
            obs.reset()
            obs.enable_tracing()
            try:
                traced = compute_digests(
                    reference_order, args.seed, parallel=workers
                )
            finally:
                traced_events = len(obs.tracer().events())
                obs.disable_tracing()
                obs.reset()
            traced_failures = 0
            for key, digest in traced.items():
                if digest != reference[key]:
                    traced_failures += 1
                    print(
                        f"TELEMETRY MISMATCH ({mode_name}) {key}: "
                        f"traced={digest[:16]}… untraced={reference[key][:16]}…"
                    )
            failures += traced_failures
            print(
                f"{len(traced)} digests with telemetry on ({mode_name}, "
                f"{traced_events} trace events): "
                + (
                    "all identical to untraced"
                    if not traced_failures
                    else f"{traced_failures} mismatches"
                )
            )

    if args.obs:
        failures += check_obs(reference, reference_order, args.seed)

    if args.backends:
        failures += check_backends(reference)

    if args.incremental:
        failures += check_incremental(reference, args.seed, args.parallel)

    if args.baseline:
        saved = json.load(open(args.baseline))
        drift = {k for k in saved if saved[k] != reference.get(k)}
        missing = set(saved) - set(reference)
        for key in sorted(drift | missing):
            failures += 1
            print(f"BASELINE DRIFT {key}")
        if not (drift or missing):
            print(f"baseline {args.baseline}: no drift")

    if args.dump:
        with open(args.dump, "w") as handle:
            json.dump(reference, handle, indent=1, sort_keys=True)
        print(f"wrote {len(reference)} digests to {args.dump}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
