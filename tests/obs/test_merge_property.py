"""Cross-process aggregation property: the parent's merged counters equal
the sum of what surviving workers actually shipped.

Worker targets are module-level (picklable) and misbehave only inside a
real worker process (gated on ``SPLLIFT_WORKER``, the idiom from
``tests/core/test_parallel.py``), so the crash-retry and timeout paths
exercise genuinely killed processes.  A killed worker's telemetry dies
with its pipe — its partial counters must *not* appear in the parent —
while a retried attempt that succeeds contributes exactly once.
"""

import os
import tempfile
import time

from hypothesis import given, settings, strategies as st

from repro.core.parallel import ProcessTaskPool
from repro.obs import runtime as obs


def _work(amount):
    obs.metrics().inc("prop.work", amount)
    with obs.tracer().span("prop/task", amount=amount):
        pass
    return amount


def _work_crash_once(amount, marker):
    if os.environ.get("SPLLIFT_WORKER") and not os.path.exists(marker):
        obs.metrics().inc("prop.work", amount)  # dies with the worker
        open(marker, "w").close()
        os._exit(9)
    return _work(amount)


def _work_timeout(amount):
    obs.metrics().inc("prop.work", amount)  # never reaches the parent
    if os.environ.get("SPLLIFT_WORKER"):
        time.sleep(30)
    return amount


class TestMergedCounterProperty:
    @given(
        amounts=st.lists(st.integers(1, 50), min_size=1, max_size=3),
        crash_amount=st.integers(1, 50),
    )
    @settings(max_examples=4, deadline=None)
    def test_merge_equals_sum_of_surviving_workers(
        self, amounts, crash_amount
    ):
        # hypothesis re-runs the body without re-running the autouse
        # fixture, so clear the process-global registry per example.
        obs.reset()
        with tempfile.TemporaryDirectory() as tmp:
            marker = os.path.join(tmp, "crash-marker")
            tasks = [(_work, (amount,)) for amount in amounts]
            tasks.append((_work_crash_once, (crash_amount, marker)))
            pool = ProcessTaskPool(max_workers=2, max_retries=1)
            outcomes = pool.run(tasks)

        all_amounts = amounts + [crash_amount]
        expected = sum(
            amount
            for outcome, amount in zip(outcomes, all_amounts)
            if outcome.ok
        )
        registry = obs.metrics()
        assert registry.counter_value("prop.work") == expected
        completed = sum(1 for outcome in outcomes if outcome.ok)
        assert registry.counter_value("pool.tasks_completed") == completed
        # The first attempt of the crash-once task really died and was
        # requeued; its successful retry is the only contribution.
        if outcomes[-1].ok and outcomes[-1].attempts == 2:
            assert registry.counter_value("pool.tasks_crashed") >= 1
            assert registry.counter_value("pool.task_retries") >= 1

    def test_timed_out_worker_contributes_nothing(self):
        obs.reset()
        pool = ProcessTaskPool(max_workers=2, task_timeout=0.4, max_retries=2)
        healthy, doomed = pool.run([(_work, (5,)), (_work_timeout, (9,))])
        assert healthy.ok and not doomed.ok
        registry = obs.metrics()
        assert registry.counter_value("prop.work") == 5
        assert registry.counter_value("pool.tasks_timeout") == 1
        assert registry.counter_value("pool.tasks_completed") == 1

    def test_worker_spans_merge_into_parent_trace(self):
        obs.reset()
        obs.enable_tracing()
        pool = ProcessTaskPool(max_workers=2)
        outcomes = pool.run([(_work, (amount,)) for amount in (1, 2, 3)])
        assert all(outcome.ok for outcome in outcomes)
        events = obs.tracer().events()
        worker_pids = {
            event["pid"] for event in events if event["name"] == "prop/task"
        }
        # Worker-side spans arrived over the pipes, on worker pids.
        assert worker_pids
        assert os.getpid() not in worker_pids
        # Parent-side dispatch spans: one B/E pair per task.
        dispatch = [e for e in events if e["name"] == "pool/dispatch"]
        assert len(dispatch) == 6
        run_ids = {
            event["args"]["run_id"]
            for event in events
            if event["name"] == "pool/task" and event["ph"] == "B"
        }
        assert run_ids == {obs.run_id()}  # one campaign id across workers
