"""Tests for the live progress line."""

import io

from repro.obs.progress import ProgressReporter


class TestProgressReporter:
    def test_tick_renders_phase_and_fields(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=0.0)
        reporter.tick("ide/phase1", worklist=1234, jumps=56)
        output = stream.getvalue()
        assert "ide/phase1" in output
        assert "worklist 1,234" in output
        assert "jumps 56" in output
        assert reporter.updates == 1

    def test_throttled_by_interval(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=3600.0)
        reporter.tick("phase")
        reporter.tick("phase")
        reporter.tick("phase")
        # First tick lands (last_emit starts at 0); the rest are inside
        # the interval window and dropped.
        assert reporter.updates == 1

    def test_extra_provider_fields_are_merged(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=0.0)
        reporter.extra = lambda: {"bdd_nodes": 99}
        reporter.tick("phase", worklist=1)
        assert "bdd_nodes 99" in stream.getvalue()

    def test_explicit_fields_beat_extra(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=0.0)
        reporter.extra = lambda: {"worklist": 0}
        reporter.tick("phase", worklist=42)
        assert "worklist 42" in stream.getvalue()

    def test_finish_clears_the_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval=0.0)
        reporter.tick("phase", worklist=7)
        reporter.finish()
        assert stream.getvalue().endswith("\r")

    def test_finish_without_tick_writes_nothing(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).finish()
        assert stream.getvalue() == ""

    def test_broken_stream_is_tolerated(self):
        stream = io.StringIO()
        stream.close()
        reporter = ProgressReporter(stream=stream, interval=0.0)
        reporter.tick("phase")  # must not raise
        reporter.finish()
        assert reporter.updates == 0
