"""Tests for the metrics registry: counters, gauges, histograms, merge."""

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import HISTOGRAM_BOUNDS, Histogram, MetricsRegistry


class TestHistogram:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.min is None and histogram.max is None

    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram()
        for value in (0.5, 2.0, 0.25):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(2.75)
        assert histogram.min == 0.25
        assert histogram.max == 2.0
        assert histogram.mean == pytest.approx(2.75 / 3)

    def test_buckets_are_exponential_with_overflow(self):
        histogram = Histogram()
        histogram.observe(0.0)  # below the first bound
        histogram.observe(HISTOGRAM_BOUNDS[-1] * 10)  # past the last bound
        assert histogram.buckets[0] == 1
        assert histogram.buckets[-1] == 1
        assert sum(histogram.buckets) == histogram.count

    def test_merge_equals_combined_observation(self):
        left, right, combined = Histogram(), Histogram(), Histogram()
        for value in (0.001, 0.5):
            left.observe(value)
            combined.observe(value)
        for value in (3.0, 0.0002):
            right.observe(value)
            combined.observe(value)
        left.merge(right.snapshot())
        assert left.snapshot() == combined.snapshot()

    def test_merge_into_empty(self):
        source = Histogram()
        source.observe(1.5)
        target = Histogram()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("pool.tasks_completed")
        registry.inc("pool.tasks_completed", 4)
        assert registry.counter_value("pool.tasks_completed") == 5
        assert registry.counter_value("never_written") == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("bdd.nodes", 10.0)
        registry.gauge("bdd.nodes", 3.0)
        assert registry.gauge_value("bdd.nodes") == 3.0

    def test_gauge_max_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        registry.gauge_max("pool.peak_workers", 2)
        registry.gauge_max("pool.peak_workers", 8)
        registry.gauge_max("pool.peak_workers", 4)
        assert registry.gauge_value("pool.peak_workers") == 8

    def test_observe_creates_histogram(self):
        registry = MetricsRegistry()
        assert registry.histogram("store.get_seconds") is None
        registry.observe("store.get_seconds", 0.01)
        assert registry.histogram("store.get_seconds").count == 1

    def test_hit_ratio(self):
        registry = MetricsRegistry()
        assert registry.hit_ratio("hits", "misses") is None
        registry.inc("hits", 3)
        registry.inc("misses", 1)
        assert registry.hit_ratio("hits", "misses") == pytest.approx(0.75)

    def test_snapshot_is_json_and_pickle_friendly(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.gauge("b", 1.5)
        registry.observe("c", 0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_histograms_maxes_gauges(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("n", 2)
        parent.gauge("g", 5.0)
        parent.observe("h", 1.0)
        worker.inc("n", 3)
        worker.inc("worker_only", 1)
        worker.gauge("g", 3.0)
        worker.observe("h", 2.0)
        parent.merge(worker.snapshot())
        assert parent.counter_value("n") == 5
        assert parent.counter_value("worker_only") == 1
        assert parent.gauge_value("g") == 5.0  # max, not last-write
        histogram = parent.histogram("h")
        assert histogram.count == 2
        assert histogram.total == pytest.approx(3.0)

    def test_describe_is_sorted_and_has_means(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        registry.observe("lat", 0.5)
        report = registry.describe()
        assert list(report["counters"]) == ["a", "z"]
        assert report["histograms"]["lat"]["mean"] == pytest.approx(0.5)

    @given(
        chunks=st.lists(
            st.lists(st.integers(0, 1000), max_size=5), max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_order_independent_for_counters(self, chunks):
        """Merging worker snapshots in any order yields identical sums."""
        snapshots = []
        for chunk in chunks:
            worker = MetricsRegistry()
            for value in chunk:
                worker.inc("work", value)
            snapshots.append(worker.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            forward.merge(snapshot)
        for snapshot in reversed(snapshots):
            backward.merge(snapshot)
        assert forward.counter_value("work") == backward.counter_value("work")
        assert forward.counter_value("work") == sum(map(sum, chunks))
