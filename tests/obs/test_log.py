"""Tests for the structured JSONL event log and its runtime wiring."""

import json
import os

from repro.obs import runtime as obs
from repro.obs.log import LOG_ENV, EventLog, format_line, iter_log


class TestEventLog:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, run_id="run-1")
        assert log.active
        log.event("job.start", label="fig1", analysis="taint")
        log.event("job.done", level="info", facts=42)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "job.start"
        assert first["run_id"] == "run-1"
        assert first["pid"] == os.getpid()
        assert first["label"] == "fig1"
        assert json.loads(lines[1])["facts"] == 42

    def test_span_field_recorded_when_given(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        record = log.event("job.start", span="service/job")
        log.close()
        assert record["span"] == "service/job"
        assert json.loads(path.read_text())["span"] == "service/job"

    def test_unopenable_path_is_inert(self, tmp_path):
        log = EventLog(tmp_path / "no" / "such" / "dir" / "x.jsonl")
        assert not log.active
        assert log.event("job.start") is None  # best-effort, never raises
        log.close()

    def test_append_mode_across_processes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = EventLog(path, run_id="r")
        first.event("batch.start")
        first.close()
        second = EventLog(path, run_id="r")  # a worker opening the same file
        second.event("job.start")
        second.close()
        events = [r["event"] for r in iter_log(path)]
        assert events == ["batch.start", "job.start"]


class TestIterLog:
    def test_skips_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "one", "ts": 1.0}\n'
            "\n"
            '{"event": "tw'  # torn mid-write
        )
        assert [r["event"] for r in iter_log(path)] == ["one"]

    def test_skips_non_object_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('[1, 2]\n{"event": "ok"}\n')
        assert [r["event"] for r in iter_log(path)] == ["ok"]


class TestFormatLine:
    def test_renders_clock_level_event_and_fields(self):
        line = format_line({
            "ts": 1700000000.123,
            "level": "error",
            "event": "job.failed",
            "pid": 42,
            "span": "service/job",
            "label": "fig1",
        })
        assert "error" in line
        assert "job.failed" in line
        assert "pid=42" in line
        assert "span=service/job" in line
        assert "label=fig1" in line

    def test_tolerates_missing_fields(self):
        line = format_line({})
        assert "--:--:--" in line
        assert "?" in line


class TestRuntimeWiring:
    def test_enable_log_writes_and_exports_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LOG_ENV, raising=False)
        path = tmp_path / "events.jsonl"
        obs.enable_log(path)
        try:
            assert os.environ.get(LOG_ENV) == str(path)
            obs.log_event("batch.start", jobs=3)
        finally:
            obs.disable_log()
        assert os.environ.get(LOG_ENV) is None
        (record,) = list(iter_log(path))
        assert record["event"] == "batch.start"
        assert record["jobs"] == 3
        assert record["run_id"]  # enable_log pins a run id

    def test_log_event_carries_innermost_flight_span(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.enable_log(path)
        try:
            obs.flight().span_begin("service/job")
            obs.log_event("job.start", label="fig1")
            obs.flight().span_end("service/job")
        finally:
            obs.disable_log()
        (record,) = list(iter_log(path))
        assert record["span"] == "service/job"

    def test_log_event_mirrors_into_flight_ring(self):
        obs.log_event("job.start", label="fig1")  # no file configured
        mirrored = [
            e for e in obs.flight().events() if e["kind"] == "log"
        ]
        assert mirrored and mirrored[-1]["name"] == "job.start"
        assert mirrored[-1]["label"] == "fig1"
