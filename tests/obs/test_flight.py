"""Tests for the flight recorder: ring semantics, spill recovery,
dump extraction, postmortem rendering, and gauge-merge semantics under
the snapshot path."""

import json
import threading

import pytest

from repro.obs import runtime as obs
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    FlightTracer,
    load_flight_dump,
    load_spill,
    render_postmortem,
)
from repro.obs.trace import NullTracer, Tracer


class TestRing:
    def test_ring_is_bounded_but_seq_keeps_counting(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", f"event-{index}")
        events = recorder.events()
        assert len(events) == 4
        assert [e["name"] for e in events] == [
            "event-6", "event-7", "event-8", "event-9",
        ]
        assert events[-1]["seq"] == 10  # drops don't reset the sequence

    def test_events_carry_seq_ts_kind_name_and_fields(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("pulse", "ide/phase1", pops=256)
        (event,) = recorder.events()
        assert event["kind"] == "pulse"
        assert event["name"] == "ide/phase1"
        assert event["pops"] == 256
        assert event["seq"] == 1
        assert event["ts"] > 0

    def test_span_stack_tracks_innermost(self):
        recorder = FlightRecorder(capacity=8)
        recorder.span_begin("outer")
        recorder.span_begin("inner")
        assert recorder.current_span() == "inner"
        assert [s["name"] for s in recorder.open_spans()] == ["outer", "inner"]
        recorder.span_end("inner")
        assert recorder.current_span() == "outer"
        recorder.span_end("outer")
        assert recorder.current_span() is None
        assert recorder.open_spans() == []

    def test_note_counters_accumulates_ints_only(self):
        recorder = FlightRecorder(capacity=8)
        recorder.note_counters("ide", {"jumps": 3, "order": "rpo", "flag": True})
        recorder.note_counters("ide", {"jumps": 4})
        dump = recorder.dump("test")
        assert dump["counters"] == {"ide.jumps": 7}

    def test_dump_shape(self):
        recorder = FlightRecorder(capacity=8)
        recorder.note_job({"label": "fig1", "analysis": "taint"})
        recorder.span_begin("pool/task")
        dump = recorder.dump("unit test", run_id="run-1")
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["reason"] == "unit test"
        assert dump["run_id"] == "run-1"
        assert dump["capacity"] == 8
        assert dump["job"]["label"] == "fig1"
        assert [s["name"] for s in dump["open_spans"]] == ["pool/task"]
        assert dump["events"][0]["kind"] == "job"
        # The dump is a snapshot: mutating the recorder afterwards must
        # not reach into it.
        recorder.record("tick", "later")
        assert all(e["name"] != "later" for e in dump["events"])


class TestSpill:
    def test_round_trip(self, tmp_path):
        spill = tmp_path / "flight-123.jsonl"
        recorder = FlightRecorder(capacity=8, spill_path=str(spill))
        recorder.note_job({"label": "fig1", "analysis": "uninit"})
        recorder.span_begin("service/job")
        recorder.note_counters("ide", {"jumps": 5})
        # SIGKILL: no close, no dump — only the spill survives.
        dump = load_spill(str(spill), reason="worker crashed")
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["reason"] == "worker crashed"
        assert dump["job"]["label"] == "fig1"
        assert [s["name"] for s in dump["open_spans"]] == ["service/job"]
        assert dump["counters"] == {"ide.jumps": 5}
        recorder.close_spill()

    def test_closed_span_not_reported_open(self, tmp_path):
        spill = tmp_path / "flight-1.jsonl"
        recorder = FlightRecorder(capacity=8, spill_path=str(spill))
        recorder.span_begin("pool/task")
        recorder.span_begin("service/job")
        recorder.span_end("service/job")
        dump = load_spill(str(spill), reason="x")
        assert [s["name"] for s in dump["open_spans"]] == ["pool/task"]
        recorder.close_spill()

    def test_torn_last_line_is_tolerated(self, tmp_path):
        spill = tmp_path / "flight-2.jsonl"
        recorder = FlightRecorder(capacity=8, spill_path=str(spill))
        recorder.record("tick", "one")
        recorder.record("tick", "two")
        recorder.close_spill()
        with open(spill, "a") as handle:
            handle.write('{"seq": 99, "kind": "tick", "na')  # torn mid-write
        dump = load_spill(str(spill), reason="x")
        assert [e["name"] for e in dump["events"]] == ["one", "two"]

    def test_missing_or_empty_spill_is_none(self, tmp_path):
        assert load_spill(str(tmp_path / "nope.jsonl"), reason="x") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_spill(str(empty), reason="x") is None

    def test_ring_bound_reapplied_on_load(self, tmp_path):
        spill = tmp_path / "flight-3.jsonl"
        recorder = FlightRecorder(capacity=4, spill_path=str(spill))
        for index in range(10):
            recorder.record("tick", f"event-{index}")
        recorder.close_spill()
        dump = load_spill(str(spill), reason="x")
        assert len(dump["events"]) == 4
        assert dump["events"][-1]["name"] == "event-9"
        assert dump["recorded"] >= 10


class TestFlightTracer:
    def test_default_tracer_is_a_disabled_null_tracer(self):
        tracer = obs.tracer()
        assert isinstance(tracer, FlightTracer)
        assert isinstance(tracer, NullTracer)  # guarded sites stay off
        assert not tracer.enabled

    def test_spans_feed_the_ring(self):
        recorder = FlightRecorder(capacity=8)
        tracer = FlightTracer(recorder)
        with tracer.span("solve", subject="fig1"):
            assert recorder.current_span() == "solve"
        kinds = [(e["kind"], e["name"]) for e in recorder.events()]
        assert kinds == [("span_begin", "solve"), ("span_end", "solve")]
        assert recorder.events()[0]["subject"] == "fig1"

    def test_instant_and_complete_feed_the_ring(self):
        recorder = FlightRecorder(capacity=8)
        tracer = FlightTracer(recorder)
        tracer.instant("marker", k=1)
        tracer.complete("work", 0, 500, n=2)
        kinds = [e["kind"] for e in recorder.events()]
        assert kinds == ["instant", "complete"]

    def test_real_tracer_feeds_the_ring_too(self):
        recorder = FlightRecorder(capacity=8)
        tracer = Tracer(run_id="r", flight=recorder)
        with tracer.span("solve"):
            pass
        assert [e["kind"] for e in recorder.events()] == [
            "span_begin", "span_end",
        ]


class TestLoadFlightDump:
    def test_raw_dump_file(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.note_job({"label": "fig1"})
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(recorder.dump("crash")))
        document = load_flight_dump(str(path))
        assert len(document["dumps"]) == 1
        assert document["dumps"][0]["reason"] == "crash"

    def test_batch_report_extracts_and_backfills_job(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        flight = recorder.dump("worker crashed (exit code -9, attempt 1)")
        report = {
            "schema": "spllift-batch-report/v1",
            "jobs": [
                {"label": "fig1", "analysis": "taint", "status": "computed"},
                {
                    "label": "fig1",
                    "analysis": "uninit",
                    "digest": "abc123",
                    "status": "failed",
                    "flight": flight,
                },
            ],
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        document = load_flight_dump(str(path))
        (dump,) = document["dumps"]
        assert dump["job"]["label"] == "fig1"
        assert dump["job"]["analysis"] == "uninit"
        assert dump["outcome"] == "failed"

    def test_report_without_flights_raises(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({
            "schema": "spllift-batch-report/v1",
            "jobs": [{"label": "fig1", "status": "computed"}],
        }))
        with pytest.raises(ValueError, match="no flight dumps"):
            load_flight_dump(str(path))

    def test_unknown_schema_and_bad_json_raise(self, tmp_path):
        bad_schema = tmp_path / "x.json"
        bad_schema.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="expected schema"):
            load_flight_dump(str(bad_schema))
        bad_json = tmp_path / "y.json"
        bad_json.write_text("{")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_flight_dump(str(bad_json))


class TestRenderPostmortem:
    def test_names_job_spans_and_events(self):
        recorder = FlightRecorder(capacity=8)
        recorder.note_job({"label": "fig1", "analysis": "taint"})
        recorder.span_begin("pool/task")
        recorder.record("pulse", "ide/phase1", pops=512)
        text = "\n".join(
            render_postmortem(recorder.dump("timeout after 5s", run_id="r-1"))
        )
        assert "reason: timeout after 5s" in text
        assert "in-flight job: fig1" in text
        assert "pool/task" in text
        assert "ide/phase1" in text

    def test_last_limits_events_shown(self):
        recorder = FlightRecorder(capacity=64)
        for index in range(30):
            recorder.record("tick", f"event-{index}")
        lines = render_postmortem(recorder.dump("x"), last=5)
        assert any("last 5 of 30 event(s)" in line for line in lines)
        assert not any("event-24" in line for line in lines)
        assert any("event-29" in line for line in lines)


class TestGaugeMergeUnderSnapshot:
    """Gauge merge semantics when the flight ring observes the same
    ``publish_stats`` traffic that feeds the registry: the ring is a
    read-only mirror, so merge results must be exactly what they'd be
    with flight recording off."""

    def test_publish_stats_feeds_ring_without_touching_gauges(self):
        obs.publish_stats("ide", {"jumps": 3, "worklist_order": "rpo"})
        assert obs.metrics().counter_value("ide.jumps") == 3
        assert obs.metrics().gauges == {}  # stats never become gauges
        counter_events = [
            e for e in obs.flight().events() if e["kind"] == "counters"
        ]
        assert counter_events[-1]["counters"] == {"ide.jumps": 3}

    def test_worker_gauges_merge_via_max_with_flight_on(self):
        assert obs.flight_enabled()
        obs.metrics().gauge("pool.peak_rss", 100.0)
        for peak in (300.0, 200.0):  # arrival order must not matter
            obs.absorb_payload({
                "metrics": {
                    "counters": {"ide.jumps": 1},
                    "gauges": {"pool.peak_rss": peak},
                    "histograms": {},
                },
                "events": [],
            })
        assert obs.metrics().gauge_value("pool.peak_rss") == 300.0
        assert obs.metrics().counter_value("ide.jumps") == 2

    def test_flight_snapshot_of_merged_registry_is_consistent(self):
        obs.metrics().gauge_max("pool.peak_rss", 50.0)
        obs.absorb_payload({
            "metrics": {
                "counters": {},
                "gauges": {"pool.peak_rss": 80.0},
                "histograms": {},
            },
            "events": [],
        })
        obs.publish_stats("pool", {"tasks": 4})
        dump = obs.flight_dump("snapshot test")
        # The ring's counter view saw only the published deltas; the
        # merged gauge lives in the registry alone.
        assert dump["counters"] == {"pool.tasks": 4}
        assert obs.metrics().gauge_value("pool.peak_rss") == 80.0
