"""Tests for the process-global obs runtime and the compat stats view."""

import os

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.core import SPLLift
from repro.ide import IDESolver
from repro.ide.binary import ifds_as_ide
from repro.ifds import IFDSSolver
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer
from repro.spl import figure1, figure1_with_model


class TestRuntimeState:
    def test_defaults(self):
        assert isinstance(obs.metrics(), MetricsRegistry)
        assert isinstance(obs.tracer(), NullTracer)
        assert obs.progress() is None
        assert not obs.tracing_enabled()

    def test_enable_tracing_is_idempotent(self):
        first = obs.enable_tracing()
        second = obs.enable_tracing()
        assert first is second
        assert obs.tracing_enabled()
        assert os.environ[obs.TELEMETRY_ENV] == "1"
        obs.disable_tracing()
        assert not obs.tracing_enabled()
        assert obs.TELEMETRY_ENV not in os.environ

    def test_run_id_minted_once_and_inherited(self):
        assert obs.run_id() is None
        minted = obs.ensure_run_id()
        assert obs.ensure_run_id() == minted
        assert os.environ[obs.RUN_ID_ENV] == minted
        assert obs.run_id() == minted
        assert len(minted) == 16

    def test_tracer_carries_run_id(self):
        tracer = obs.enable_tracing()
        assert tracer.run_id == obs.run_id()

    def test_publish_stats_skips_non_counters(self):
        obs.publish_stats(
            "x", {"n": 3, "flag": True, "order": "rpo", "rate": 0.5}
        )
        assert obs.metrics().counter_value("x.n") == 3
        assert obs.metrics().counters == {"x.n": 3}

    def test_activate_worker_installs_fresh_state(self):
        obs.metrics().inc("parent_only", 7)
        obs.activate_worker()
        assert obs.metrics().counter_value("parent_only") == 0
        assert isinstance(obs.tracer(), NullTracer)

    def test_activate_worker_respects_telemetry_env(self):
        obs.enable_tracing()
        with obs.tracer().span("parent"):
            pass
        obs.activate_worker()  # simulates the post-fork child
        assert isinstance(obs.tracer(), Tracer)
        assert obs.tracer().events() == []  # parent's buffer not inherited

    def test_worker_payload_roundtrip(self):
        obs.enable_tracing()
        obs.activate_worker()
        obs.metrics().inc("pool.tasks_completed")
        with obs.tracer().span("pool/task"):
            pass
        payload = obs.worker_payload()
        obs.reset()
        obs.enable_tracing()
        obs.absorb_payload(payload)
        assert obs.metrics().counter_value("pool.tasks_completed") == 1
        assert [e["name"] for e in obs.tracer().events()] == [
            "pool/task",
            "pool/task",
        ]
        obs.absorb_payload(None)  # tolerated: crashed worker, old protocol
        assert obs.metrics().counter_value("pool.tasks_completed") == 1


class TestCompatStatsView:
    """The ISSUE 5 gate: legacy ``stats`` dicts stay authoritative and
    the registry mirrors them exactly."""

    def test_ide_solver_stats_mirrored_as_counters(self):
        solver = IDESolver(ifds_as_ide(TaintAnalysis(figure1().icfg)))
        solver.solve()
        registry = obs.metrics()
        mirrored = 0
        for name, value in solver.stats.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            assert registry.counter_value(f"ide.solver.{name}") == value
            mirrored += 1
        assert mirrored >= 4  # jump_functions, flow_applications, ...
        assert "jump_functions" in solver.stats  # legacy keys still there

    def test_ifds_solver_stats_mirrored_as_counters(self):
        solver = IFDSSolver(TaintAnalysis(figure1().icfg))
        solver.solve()
        registry = obs.metrics()
        for name, value in solver.stats.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            assert registry.counter_value(f"ifds.solver.{name}") == value

    def test_registry_accumulates_across_solves(self):
        problem = ifds_as_ide(TaintAnalysis(figure1().icfg))
        first = IDESolver(problem)
        first.solve()
        second = IDESolver(ifds_as_ide(TaintAnalysis(figure1().icfg)))
        second.solve()
        total = obs.metrics().counter_value("ide.solver.jump_functions")
        assert total == (
            first.stats["jump_functions"] + second.stats["jump_functions"]
        )

    def test_spllift_solve_publishes_bdd_gauges(self):
        product_line = figure1_with_model()
        SPLLift(
            UninitializedVariablesAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        ).solve()
        gauges = obs.metrics().gauges
        assert any(name.startswith("bdd.") for name in gauges)


class TestSolverTracing:
    def test_sequential_solve_emits_phase_spans(self):
        obs.enable_tracing()
        product_line = figure1_with_model()
        SPLLift(
            UninitializedVariablesAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        ).solve()
        names = {e["name"] for e in obs.tracer().events()}
        assert {
            "spllift/solve",
            "ide/solve",
            "ide/phase1/tabulation",
            "ide/phase2/values",
            "ide/phase2/i",
            "ide/phase2/ii",
        } <= names

    def test_untraced_solve_buffers_nothing(self):
        product_line = figure1_with_model()
        SPLLift(
            UninitializedVariablesAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        ).solve()
        assert obs.tracer().events() == []
