"""Tests for the span tracer and the Chrome trace_event file format."""

import json
import os

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    fold_trace,
    read_trace,
    summarize_trace,
    write_trace,
)


class TestTracer:
    def test_span_emits_balanced_monotonic_pair(self):
        tracer = Tracer()
        with tracer.span("outer", detail=7):
            with tracer.span("inner"):
                pass
        names = [(e["name"], e["ph"]) for e in tracer.events()]
        assert names == [
            ("outer", "B"),
            ("inner", "B"),
            ("inner", "E"),
            ("outer", "E"),
        ]
        timestamps = [e["ts"] for e in tracer.events()]
        assert timestamps == sorted(timestamps)
        assert tracer.events()[0]["args"] == {"detail": 7}
        assert all(e["pid"] == os.getpid() for e in tracer.events())

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [e["ph"] for e in tracer.events()] == ["B", "E"]

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("bdd/reorder", before=10, after=4)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert event["args"] == {"before": 10, "after": 4}

    def test_complete_lands_on_requested_tid(self):
        tracer = Tracer()
        tracer.complete("pool/dispatch", 100.0, 250.0, tid=4242, index=1)
        begin, end = tracer.events()
        assert begin["ph"] == "B" and begin["ts"] == 100.0
        assert end["ph"] == "E" and end["ts"] == 250.0
        assert begin["tid"] == end["tid"] == 4242

    def test_drain_clears_absorb_appends(self):
        worker = Tracer()
        with worker.span("work"):
            pass
        shipped = worker.drain()
        assert worker.events() == []
        parent = Tracer()
        parent.absorb(shipped)
        assert [e["name"] for e in parent.events()] == ["work", "work"]


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("ignored", key="value"):
            tracer.instant("ignored")
            tracer.complete("ignored", 0.0, 1.0)
        assert tracer.events() == []
        assert tracer.drain() == []
        tracer.absorb([{"name": "x"}])
        assert tracer.events() == []

    def test_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestWriteTrace:
    def test_file_is_json_array_one_event_per_line(self, tmp_path):
        tracer = Tracer()
        with tracer.span("solve"):
            tracer.instant("mark")
        path = tmp_path / "trace.json"
        count = write_trace(tracer.events(), path)
        assert count == 3  # metadata rows not counted
        text = path.read_text()
        document = json.loads(text)
        assert isinstance(document, list)
        body = [
            line
            for line in text.splitlines()
            if line.strip() not in ("", "[", "]")
        ]
        assert len(body) == len(document)

    def test_sorts_interleaved_worker_events(self, tmp_path):
        events = [
            {"name": "late", "ph": "B", "ts": 200.0, "pid": 1, "tid": 1},
            {"name": "early", "ph": "B", "ts": 100.0, "pid": 2, "tid": 1},
        ]
        path = tmp_path / "trace.json"
        write_trace(events, path)
        loaded = [e for e in read_trace(path) if e["ph"] != "M"]
        assert [e["name"] for e in loaded] == ["early", "late"]

    def test_process_name_metadata_labels_workers(self, tmp_path):
        events = [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 10, "tid": 1},
            {"name": "b", "ph": "B", "ts": 2.0, "pid": 77, "tid": 1},
        ]
        path = tmp_path / "trace.json"
        write_trace(events, path, run_id="cafe01")
        metadata = [e for e in read_trace(path) if e["ph"] == "M"]
        labels = {e["pid"]: e["args"]["name"] for e in metadata}
        assert labels[10] == "spllift [cafe01]"
        assert labels[77] == "spllift worker 77 [cafe01]"

    def test_read_trace_accepts_object_format_and_jsonl(self, tmp_path):
        event = {"name": "x", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1}
        as_object = tmp_path / "object.json"
        as_object.write_text(json.dumps({"traceEvents": [event]}))
        assert read_trace(as_object) == [event]
        as_jsonl = tmp_path / "events.jsonl"
        as_jsonl.write_text(json.dumps(event) + "\n")
        assert read_trace(as_jsonl) == [event]


class TestSummarizeTrace:
    @staticmethod
    def _span(name, start, end, pid=1, tid=1):
        return [
            {"name": name, "ph": "B", "ts": start, "pid": pid, "tid": tid},
            {"name": name, "ph": "E", "ts": end, "pid": pid, "tid": tid},
        ]

    def test_totals_counts_and_depth(self):
        events = (
            self._span("outer", 0.0, 100.0)[:1]
            + self._span("inner", 10.0, 30.0)
            + self._span("outer", 0.0, 100.0)[1:]
        )
        summary = summarize_trace(events)
        rows = {row["name"]: row for row in summary["rows"]}
        assert rows["outer"]["total_us"] == pytest.approx(100.0)
        assert rows["inner"]["total_us"] == pytest.approx(20.0)
        assert rows["outer"]["depth"] == 0
        assert rows["inner"]["depth"] == 1
        assert summary["wall_us"] == pytest.approx(100.0)
        assert summary["coverage_pct"] == pytest.approx(100.0)

    def test_concurrent_tracks_do_not_double_count_wall(self):
        # Two workers busy over the same 100µs: coverage is 100%, not 200%.
        events = self._span("task", 0.0, 100.0, pid=1) + self._span(
            "task", 0.0, 100.0, pid=2
        )
        summary = summarize_trace(events)
        assert summary["top_level_us"] == pytest.approx(100.0)
        assert summary["coverage_pct"] == pytest.approx(100.0)
        rows = {row["name"]: row for row in summary["rows"]}
        assert rows["task"]["count"] == 2
        assert rows["task"]["total_us"] == pytest.approx(200.0)

    def test_gap_reduces_coverage(self):
        events = self._span("a", 0.0, 25.0) + self._span("b", 75.0, 100.0)
        summary = summarize_trace(events)
        assert summary["coverage_pct"] == pytest.approx(50.0)

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary["wall_us"] == 0.0
        assert summary["rows"] == []
        assert summary["coverage_pct"] == 0.0


class TestFoldTrace:
    def _span(self, name, begin, end, pid=1, tid=1):
        return [
            {"name": name, "ph": "B", "ts": begin, "pid": pid, "tid": tid},
            {"name": name, "ph": "E", "ts": end, "pid": pid, "tid": tid},
        ]

    def test_self_time_attribution(self):
        # outer [0, 100] with inner [10, 30]: outer self = 80, inner = 20.
        events = (
            self._span("outer", 0.0, 100.0)[:1]
            + self._span("inner", 10.0, 30.0)
            + self._span("outer", 0.0, 100.0)[1:]
        )
        assert fold_trace(events) == ["outer 80", "outer;inner 20"]

    def test_repeated_stacks_accumulate(self):
        events = (
            self._span("task", 0.0, 10.0) + self._span("task", 20.0, 35.0)
        )
        assert fold_trace(events) == ["task 25"]

    def test_tracks_fold_independently(self):
        events = self._span("task", 0.0, 10.0, pid=1) + self._span(
            "task", 0.0, 10.0, pid=2
        )
        assert fold_trace(events) == ["task 20"]

    def test_frame_sanitization(self):
        events = self._span("bdd apply;hot", 0.0, 5.0)
        assert fold_trace(events) == ["bdd_apply_hot 5"]

    def test_zero_self_time_dropped(self):
        events = (
            self._span("outer", 0.0, 10.0)[:1]
            + self._span("inner", 0.0, 10.0)
            + self._span("outer", 0.0, 10.0)[1:]
        )
        assert fold_trace(events) == ["outer;inner 10"]

    def test_live_tracer_folds(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("phase1"):
                pass
        lines = fold_trace(tracer.events())
        assert any(line.startswith("solve ") for line in lines) or any(
            line.startswith("solve;phase1 ") for line in lines
        )
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit()

    def test_empty(self):
        assert fold_trace([]) == []
