"""Shared fixtures for the telemetry tests.

Every test starts from a clean slate: fresh registry, null tracer, no
progress reporter, and neither telemetry environment variable set — the
obs runtime is process-global state, so leaking it between tests would
make counter assertions order-dependent.
"""

import pytest

from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv(obs.RUN_ID_ENV, raising=False)
    monkeypatch.delenv(obs.TELEMETRY_ENV, raising=False)
    obs.reset()
    yield
    obs.reset()
