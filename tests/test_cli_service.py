"""Tests for the service-facing CLI: ``spllift batch`` / ``spllift cache``
and the clean one-line error contract of every subcommand."""

import json

import pytest

from repro.cli import main
from repro.spl.examples import FIGURE1_SOURCE


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "batch.json"
    path.write_text(
        json.dumps(
            {
                "jobs": [
                    {
                        "source": FIGURE1_SOURCE,
                        "analysis": "taint",
                        "label": "fig1",
                    },
                    {
                        "source": FIGURE1_SOURCE,
                        "analysis": "uninit",
                        "label": "fig1",
                    },
                ]
            }
        )
    )
    return str(path)


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "store")


class TestBatch:
    def test_cold_then_warm(self, manifest, cache_dir, capsys):
        rc = main(
            ["batch", manifest, "--cache-dir", cache_dir, "--no-pool"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 computed" in out and "0 failed" in out
        rc = main(
            ["batch", manifest, "--cache-dir", cache_dir, "--no-pool"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 cached" in out and "0 computed" in out

    def test_report_file(self, manifest, cache_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main(
            [
                "batch",
                manifest,
                "--cache-dir",
                cache_dir,
                "--no-pool",
                "--report",
                str(report_path),
            ]
        )
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "spllift-batch-report/v1"
        assert report["computed"] == 2
        assert all(row["result_digest"] for row in report["jobs"])

    def test_pooled_batch_matches_inline(self, manifest, tmp_path, capsys):
        cold = tmp_path / "pool.json"
        warm = tmp_path / "inline.json"
        assert (
            main(["batch", manifest, "--no-store", "--report", str(cold)])
            == 0
        )
        assert (
            main(
                [
                    "batch",
                    manifest,
                    "--no-store",
                    "--no-pool",
                    "--report",
                    str(warm),
                ]
            )
            == 0
        )
        capsys.readouterr()
        pooled = json.loads(cold.read_text())["jobs"]
        inline = json.loads(warm.read_text())["jobs"]
        assert [r["result_digest"] for r in pooled] == [
            r["result_digest"] for r in inline
        ]

    def test_failed_job_exits_nonzero(self, tmp_path, cache_dir, capsys):
        manifest = tmp_path / "bad.json"
        manifest.write_text(
            json.dumps(
                {"jobs": [{"source": "class Main {", "analysis": "taint"}]}
            )
        )
        rc = main(
            ["batch", str(manifest), "--cache-dir", cache_dir, "--no-pool"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 failed" in out

    def test_paper_campaign_manifest_parses(self):
        # The checked-in manifests must stay loadable (the CI smoke uses
        # them); parse only — running 12 jobs is the smoke's job.
        from pathlib import Path

        from repro.service import load_manifest

        manifests = Path(__file__).resolve().parent.parent / "benchmarks" / "manifests"
        jobs = load_manifest(str(manifests / "paper.json"))
        assert len(jobs) == 12
        smoke = load_manifest(str(manifests / "smoke.json"))
        assert 0 < len(smoke) <= 6


class TestCache:
    def test_stats_and_clear(self, manifest, cache_dir, capsys):
        main(["batch", manifest, "--cache-dir", cache_dir, "--no-pool"])
        capsys.readouterr()
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "records:    2" in out
        assert "corrupt:    0" in out
        assert "spllift-result/v1: 2" in out
        rc = main(["cache", "clear", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "removed 2 record(s)" in out
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "records:    0" in out

    def test_stats_reports_corrupt_records(self, manifest, cache_dir, capsys):
        from pathlib import Path

        main(["batch", manifest, "--cache-dir", cache_dir, "--no-pool"])
        capsys.readouterr()
        victim = next((Path(cache_dir) / "objects").rglob("*.json"))
        victim.write_text("{broken json")
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "records:    2" in out
        assert "corrupt:    1" in out
        assert "spllift-result/v1: 1" in out

    def test_stats_reports_total_bytes(self, manifest, cache_dir, capsys):
        main(["batch", manifest, "--cache-dir", cache_dir, "--no-pool"])
        capsys.readouterr()
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        (bytes_line,) = [l for l in out.splitlines() if l.startswith("bytes:")]
        assert int(bytes_line.split()[-1]) > 0

    def test_prune_to_zero_evicts_everything(self, manifest, cache_dir, capsys):
        main(["batch", manifest, "--cache-dir", cache_dir, "--no-pool"])
        capsys.readouterr()
        rc = main(["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pruned 2 record(s)" in out
        assert "remaining: 0 record(s), 0 bytes" in out
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "records:    0" in out

    def test_prune_under_budget_is_noop(self, manifest, cache_dir, capsys):
        main(["batch", manifest, "--cache-dir", cache_dir, "--no-pool"])
        capsys.readouterr()
        rc = main(
            ["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "99999999"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "pruned 0 record(s)" in out
        rc = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "records:    2" in out

    def test_prune_without_max_bytes_is_error(self, cache_dir, capsys):
        rc = main(["cache", "prune", "--cache-dir", cache_dir])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: ")

    def test_stats_on_missing_dir_reports_zeros(self, tmp_path, capsys):
        rc = main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "never-made")]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.err == ""
        assert "records:    0" in captured.out
        assert "bytes:      0" in captured.out
        # Asking for stats must not create the directory.
        assert not (tmp_path / "never-made").exists()

    def test_stats_on_file_path_is_one_line_error(self, tmp_path, capsys):
        not_a_dir = tmp_path / "plain-file"
        not_a_dir.write_text("hello")
        rc = main(["cache", "stats", "--cache-dir", str(not_a_dir)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: ")
        assert len(captured.err.strip().splitlines()) == 1


class TestBackendSpecs:
    """URL-style --cache-dir specs select the sqlite/HTTP backends."""

    def test_batch_and_stats_via_sqlite_spec(self, manifest, tmp_path, capsys):
        spec = f"sqlite://{tmp_path / 'store.db'}"
        rc = main(["batch", manifest, "--cache-dir", spec, "--no-pool"])
        assert rc == 0
        rc = main(["batch", manifest, "--cache-dir", spec, "--no-pool"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 cached" in out
        rc = main(["cache", "stats", "--cache-dir", spec])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend:    sqlite" in out
        assert "records:    2" in out

    def test_sqlite_stats_on_missing_file_reports_zeros(self, tmp_path, capsys):
        spec = f"sqlite://{tmp_path / 'missing.db'}"
        rc = main(["cache", "stats", "--cache-dir", spec])
        out = capsys.readouterr().out
        assert rc == 0
        assert "records:    0" in out
        assert not (tmp_path / "missing.db").exists()

    def test_corrupt_sqlite_file_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "broken.db"
        path.write_text("this is not a database")
        rc = main(["cache", "stats", "--cache-dir", f"sqlite://{path}"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_http_stats_with_dead_server_is_one_line_error(self, capsys):
        rc = main(["cache", "stats", "--cache-dir", "http://127.0.0.1:9"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: ")
        assert "Traceback" not in captured.err

    def test_serve_refuses_http_spec(self, capsys):
        rc = main(["serve", "--cache-dir", "http://127.0.0.1:9"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "cannot serve an http:// store" in captured.err

    def test_batch_against_served_store(self, manifest, tmp_path, capsys):
        import threading

        from repro.service import make_server, open_store

        backing = open_store(f"sqlite://{tmp_path / 'served.db'}")
        server = make_server(backing, port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            spec = f"http://{host}:{port}"
            rc = main(["batch", manifest, "--cache-dir", spec, "--no-pool"])
            assert rc == 0
            rc = main(["batch", manifest, "--cache-dir", spec, "--no-pool"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "2 cached" in out and "0 computed" in out
        finally:
            server.shutdown()
            thread.join(timeout=5)


class TestDagCli:
    def test_dag_manifest_runs_and_reports_waves(self, tmp_path, capsys):
        manifest = tmp_path / "dag.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"id": "a", "source": FIGURE1_SOURCE,
                         "analysis": "taint"},
                        {"id": "b", "after": ["a"], "source": FIGURE1_SOURCE,
                         "analysis": "uninit"},
                    ]
                }
            )
        )
        rc = main(
            [
                "batch",
                str(manifest),
                "--cache-dir",
                str(tmp_path / "store"),
                "--no-pool",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 computed" in out
        assert "2 wave(s)" in out

    def test_cycle_is_one_line_error(self, tmp_path, capsys):
        manifest = tmp_path / "cycle.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"id": "a", "after": ["b"], "source": FIGURE1_SOURCE,
                         "analysis": "taint"},
                        {"id": "b", "after": ["a"], "source": FIGURE1_SOURCE,
                         "analysis": "uninit"},
                    ]
                }
            )
        )
        rc = main(["batch", str(manifest)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: dependency cycle")
        assert len(captured.err.strip().splitlines()) == 1

    def test_unknown_dependency_id_is_one_line_error(self, tmp_path, capsys):
        manifest = tmp_path / "ghost.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"id": "a", "after": ["ghost"],
                         "source": FIGURE1_SOURCE, "analysis": "taint"},
                    ]
                }
            )
        )
        rc = main(["batch", str(manifest)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown dependency id" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestCleanErrors:
    """Every user error: exit code 2, one ``spllift: error:`` line, no
    traceback."""

    def _check(self, capsys, rc):
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_analyze_missing_file(self, capsys):
        rc = main(["analyze", "no-such-file.mj"])
        self._check(capsys, rc)

    def test_analyze_unparseable_source(self, tmp_path, capsys):
        path = tmp_path / "broken.mj"
        path.write_text("class Main { void main( {")
        rc = main(["analyze", str(path)])
        self._check(capsys, rc)

    def test_analyze_bad_feature_model(self, tmp_path, capsys):
        source = tmp_path / "ok.mj"
        source.write_text(FIGURE1_SOURCE)
        fm = tmp_path / "bad.fm"
        fm.write_text("root A {{{")
        rc = main(["analyze", str(source), "--feature-model", str(fm)])
        self._check(capsys, rc)

    def test_batch_missing_manifest(self, capsys):
        rc = main(["batch", "no-such-manifest.json"])
        self._check(capsys, rc)

    def test_batch_unparseable_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        rc = main(["batch", str(path)])
        self._check(capsys, rc)

    def test_batch_unknown_analysis(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {"jobs": [{"source": FIGURE1_SOURCE, "analysis": "astro"}]}
            )
        )
        rc = main(["batch", str(path)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("spllift: error: unknown analysis")
        assert "Traceback" not in captured.err

    def test_run_missing_file(self, capsys):
        rc = main(["run", "no-such-file.mj"])
        self._check(capsys, rc)

    def test_metrics_missing_file(self, capsys):
        rc = main(["metrics", "no-such-file.mj"])
        self._check(capsys, rc)

    def test_interfaces_missing_file(self, capsys):
        rc = main(["interfaces", "no-such-file.mj", "--feature", "F"])
        self._check(capsys, rc)

    def test_unknown_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
