"""Worklist scheduling: BucketQueue, RPO prioritization, digest identity.

The IDE fixed point is iteration-order independent, so every scheduling
policy must produce bit-identical :meth:`result_digest` output — RPO only
changes *how fast* the solver gets there.  These tests pin that invariant
for the lifted pipeline and exercise the bucket queue the RPO order runs
on.
"""

import pytest

from repro.analyses import (
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.core import SPLLift
from repro.ide import IDESolver
from repro.ide.binary import ifds_as_ide
from repro.ide.solver import BucketQueue, WORKLIST_ORDERS, resolve_worklist_order
from repro.ifds import IFDSSolver
from repro.spl import device_spl, figure1


class TestBucketQueue:
    def test_pops_lowest_rank_first(self):
        queue = BucketQueue()
        queue.push(3, "c")
        queue.push(1, "a")
        queue.push(2, "b")
        assert queue.pop() == "a"
        assert queue.pop() == "b"
        assert queue.pop() == "c"

    def test_len_tracks_pushes_and_pops(self):
        queue = BucketQueue()
        assert len(queue) == 0
        queue.push(0, "a")
        queue.push(5, "b")
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0

    def test_cursor_rewinds_on_lower_rank_push(self):
        queue = BucketQueue()
        queue.push(4, "late")
        assert queue.pop() == "late"
        # The cursor sits at rank 4 now; a lower-rank push must rewind it.
        queue.push(4, "late2")
        queue.push(1, "early")
        assert queue.pop() == "early"
        assert queue.pop() == "late2"

    def test_grows_to_arbitrary_ranks(self):
        queue = BucketQueue()
        queue.push(100, "far")
        queue.push(0, "near")
        assert queue.pop() == "near"
        assert queue.pop() == "far"

    def test_drains_same_rank_completely(self):
        queue = BucketQueue()
        for entry in ("a", "b", "c"):
            queue.push(2, entry)
        drained = {queue.pop(), queue.pop(), queue.pop()}
        assert drained == {"a", "b", "c"}
        assert len(queue) == 0


class TestResolveOrder:
    def test_orders_constant(self):
        assert WORKLIST_ORDERS == ("fifo", "lifo", "random", "rpo")

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("SPLLIFT_WORKLIST_ORDER", "lifo")
        assert resolve_worklist_order("rpo") == "rpo"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("SPLLIFT_WORKLIST_ORDER", "rpo")
        assert resolve_worklist_order(None) == "rpo"

    def test_fifo_fallback(self, monkeypatch):
        monkeypatch.delenv("SPLLIFT_WORKLIST_ORDER", raising=False)
        assert resolve_worklist_order(None) == "fifo"


class TestRpoFixedPoint:
    def test_rpo_matches_reference_ifds(self):
        product_line = figure1()
        problem = TaintAnalysis(product_line.icfg)
        reference = IFDSSolver(problem).solve()
        ide_results = IDESolver(ifds_as_ide(problem), worklist_order="rpo").solve()
        for stmt in product_line.icfg.reachable_instructions():
            assert reference.at(stmt) == frozenset(ide_results.results_at(stmt))

    def test_ifds_rpo_matches_fifo(self):
        product_line = device_spl()
        problem = UninitializedVariablesAnalysis(product_line.icfg)
        fifo = IFDSSolver(problem, worklist_order="fifo").solve()
        rpo = IFDSSolver(problem, worklist_order="rpo").solve()
        for stmt in product_line.icfg.reachable_instructions():
            assert fifo.at(stmt) == rpo.at(stmt)

    def test_rpo_stats_recorded(self):
        problem = ifds_as_ide(TaintAnalysis(figure1().icfg))
        solver = IDESolver(problem, worklist_order="rpo")
        solver.solve()
        assert solver.stats["worklist_order"] == "rpo"


class TestLiftedDigestIdentity:
    @pytest.mark.parametrize("spl", [figure1, device_spl])
    @pytest.mark.parametrize(
        "analysis_cls", [ReachingDefinitionsAnalysis, UninitializedVariablesAnalysis]
    )
    def test_digest_identical_across_orders(self, spl, analysis_cls):
        product_line = spl()
        digests = set()
        for order in WORKLIST_ORDERS:
            results = SPLLift(
                analysis_cls(product_line.icfg),
                feature_model=product_line.feature_model,
            ).solve(worklist_order=order, order_seed=11)
            digests.add(results.result_digest())
        assert len(digests) == 1

    def test_solver_stats_surface_bdd_counters(self):
        product_line = figure1()
        results = SPLLift(
            ReachingDefinitionsAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        ).solve(worklist_order="rpo")
        assert results.stats["worklist_order"] == "rpo"
        assert results.stats["bdd_nodes"] > 0
        assert "bdd_apply_calls" in results.stats
        assert "reorder_swaps" in results.stats
