"""Section 4.2: the three ways of handling the feature model.

- "edge": conjoin m onto every edge (the paper's shipped design);
- "seed": start value m, edges unchanged (the rejected first attempt —
  "while this yields the same analysis results eventually, we found that
  it wastes performance");
- "ignore": no m at all.

"edge" and "seed" must agree on all final values; "edge" must do no more
jump-function work than "seed" (that is the point of the design); and
"ignore" differs exactly by not filtering invalid configurations.
"""

import pytest

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.constraints import BddConstraintSystem
from repro.core import SPLLift
from repro.core.lifting import FM_MODES
from repro.spl import device_spl, figure1_with_model


def solve_mode(product_line, analysis_class, fm_mode, system):
    analysis = analysis_class(product_line.icfg)
    return SPLLift(
        analysis,
        feature_model=product_line.feature_model,
        system=system,
        fm_mode=fm_mode,
    ).solve()


@pytest.mark.parametrize("analysis_class", [TaintAnalysis, UninitializedVariablesAnalysis])
@pytest.mark.parametrize("builder", [figure1_with_model, device_spl])
def test_edge_and_seed_agree_on_all_values(analysis_class, builder):
    """"This yields the same analysis results eventually" — modulo the
    seed node itself, whose value trivially stays `true` in edge mode but
    is `m` in seed mode; everywhere both answers agree once conjoined
    with the model."""
    product_line = builder()
    system = BddConstraintSystem()
    edge = solve_mode(product_line, analysis_class, "edge", system)
    seed = solve_mode(product_line, analysis_class, "seed", system)
    model = edge.feature_model
    for stmt in product_line.icfg.reachable_instructions():
        edge_values = edge.results_at(stmt, include_zero=True)
        seed_values = seed.results_at(stmt, include_zero=True)
        assert set(edge_values) == set(seed_values), stmt.location
        for fact, value in edge_values.items():
            assert (value & model) == (seed_values[fact] & model), (
                stmt.location,
                fact,
            )


@pytest.mark.parametrize("builder", [figure1_with_model, device_spl])
def test_edge_mode_constructs_no_more_jump_functions(builder):
    product_line = builder()
    system = BddConstraintSystem()
    edge = solve_mode(product_line, TaintAnalysis, "edge", system)
    seed = solve_mode(product_line, TaintAnalysis, "seed", system)
    assert edge.stats["jump_functions"] <= seed.stats["jump_functions"]


def test_edge_mode_terminates_paths_early():
    """On figure1 with F<->G, the leak path dies during construction in
    edge mode (fewer jump functions than with the model ignored)."""
    product_line = figure1_with_model()
    system = BddConstraintSystem()
    edge = solve_mode(product_line, TaintAnalysis, "edge", system)
    ignore = solve_mode(product_line, TaintAnalysis, "ignore", system)
    assert edge.stats["jump_functions"] <= ignore.stats["jump_functions"]


def test_ignore_mode_reports_invalid_config_results():
    product_line = figure1_with_model()
    system = BddConstraintSystem()
    analysis = TaintAnalysis(product_line.icfg)
    ignore = SPLLift(analysis, feature_model=None, system=system, fm_mode="ignore").solve()
    (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
    constraint = ignore.constraint_for(stmt, fact)
    # Without the model the leak is reported for the (invalid) product.
    assert constraint == system.parse("!F && G && !H")


def test_seed_mode_filters_in_value_phase():
    product_line = figure1_with_model()
    system = BddConstraintSystem()
    seed = solve_mode(product_line, TaintAnalysis, "seed", system)
    analysis = TaintAnalysis(product_line.icfg)
    (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
    assert seed.constraint_for(stmt, fact).is_false


def test_invalid_mode_rejected():
    product_line = figure1_with_model()
    analysis = TaintAnalysis(product_line.icfg)
    with pytest.raises(ValueError):
        SPLLift(analysis, fm_mode="nonsense")
    assert set(FM_MODES) == {"edge", "seed", "ignore"}
