"""Flyweight edge-function interning and the memoized constraint algebra.

Property-style checks that the :class:`EdgeFunctionTable` fast path is a
pure optimization: interned compose/join must agree with the formula-level
reference semantics (computed through the independent DNF backend), and the
cache counters must behave like counters.
"""

import random

import pytest

from repro.analyses import TaintAnalysis
from repro.constraints import BddConstraintSystem, DnfConstraintSystem
from repro.core import SPLLift
from repro.core.lifting import ConstraintEdge, EdgeFunctionTable
from repro.spl import figure1

FEATURES = ("F", "G", "H", "K")


def _random_spec(rng, depth=3):
    """A backend-independent formula spec tree."""
    if depth == 0 or rng.random() < 0.3:
        return ("var", rng.choice(FEATURES))
    op = rng.choice(("and", "or", "not"))
    if op == "not":
        return ("not", _random_spec(rng, depth - 1))
    return (op, _random_spec(rng, depth - 1), _random_spec(rng, depth - 1))


def _build(spec, system):
    if spec[0] == "var":
        return system.var(spec[1])
    if spec[0] == "not":
        return system.not_(_build(spec[1], system))
    left, right = _build(spec[1], system), _build(spec[2], system)
    return system.and_(left, right) if spec[0] == "and" else system.or_(left, right)


def _assignments():
    for bits in range(2 ** len(FEATURES)):
        yield {
            feature: bool(bits >> i & 1) for i, feature in enumerate(FEATURES)
        }


def _same_function(bdd_constraint, dnf_constraint):
    """Semantic equality across backends: agree on every assignment."""
    return all(
        bdd_constraint.satisfied_by(a) == dnf_constraint.satisfied_by(a)
        for a in _assignments()
    )


@pytest.fixture
def table():
    return EdgeFunctionTable(BddConstraintSystem())


class TestInterning:
    def test_equal_constraints_intern_to_one_instance(self, table):
        f = table.system.var("F")
        g = table.system.var("G")
        lhs = table.edge(table.system.not_(table.system.and_(f, g)))
        rhs = table.edge(
            table.system.or_(table.system.not_(f), table.system.not_(g))
        )
        # Canonical BDDs: De Morgan equals collapse to the same flyweight.
        assert lhs is rhs

    def test_flyweight_equality_is_identity(self, table):
        f_edge = table.edge(table.system.var("F"))
        g_edge = table.edge(table.system.var("G"))
        assert f_edge.equal_to(f_edge)
        assert not f_edge.equal_to(g_edge)

    def test_compose_and_join_return_interned_edges(self, table):
        f_edge = table.edge(table.system.var("F"))
        g_edge = table.edge(table.system.var("G"))
        composed = f_edge.compose_with(g_edge)
        joined = f_edge.join_with(g_edge)
        assert composed is table.edge(composed.constraint)
        assert joined is table.edge(joined.constraint)

    def test_repeat_operations_return_identical_objects(self, table):
        f_edge = table.edge(table.system.var("F"))
        g_edge = table.edge(table.system.var("G"))
        assert f_edge.compose_with(g_edge) is f_edge.compose_with(g_edge)
        assert f_edge.join_with(g_edge) is g_edge.join_with(f_edge)

    def test_untabled_edges_keep_allocating_semantics(self, table):
        free = ConstraintEdge(table.system.var("F"))
        other = ConstraintEdge(table.system.var("F"))
        assert free is not other
        assert free.equal_to(other)


class TestAlgebraAgreesWithFormulaBackend:
    """Randomized pairs: the memoized BDD-backed algebra must compute the
    same boolean function as the independent DNF reference backend."""

    def test_compose_matches_reference_conjunction(self, table):
        rng = random.Random(20130601)
        reference = DnfConstraintSystem()
        for _ in range(40):
            spec_a, spec_b = _random_spec(rng), _random_spec(rng)
            interned = table.edge(_build(spec_a, table.system)).compose_with(
                table.edge(_build(spec_b, table.system))
            )
            expected = reference.and_(
                _build(spec_a, reference), _build(spec_b, reference)
            )
            assert _same_function(interned.constraint, expected)

    def test_join_matches_reference_disjunction(self, table):
        rng = random.Random(19950129)
        reference = DnfConstraintSystem()
        for _ in range(40):
            spec_a, spec_b = _random_spec(rng), _random_spec(rng)
            interned = table.edge(_build(spec_a, table.system)).join_with(
                table.edge(_build(spec_b, table.system))
            )
            expected = reference.or_(
                _build(spec_a, reference), _build(spec_b, reference)
            )
            assert _same_function(interned.constraint, expected)


class TestCacheCounters:
    def test_counters_are_monotone(self, table):
        f_edge = table.edge(table.system.var("F"))
        g_edge = table.edge(table.system.var("G"))
        seen = dict(table.stats)
        for _ in range(5):
            f_edge.compose_with(g_edge)
            f_edge.join_with(g_edge)
            current = table.cache_stats()
            for key, value in seen.items():
                if key in current:
                    assert current[key] >= value
            seen = {k: current[k] for k in seen if k in current}

    def test_hit_miss_accounting(self, table):
        f_edge = table.edge(table.system.var("F"))
        g_edge = table.edge(table.system.var("G"))
        f_edge.compose_with(g_edge)
        assert table.stats["compose_cache_misses"] == 1
        f_edge.compose_with(g_edge)
        assert table.stats["compose_cache_hits"] == 1
        # Commutative-key normalization: the mirrored join shares the entry.
        f_edge.join_with(g_edge)
        g_edge.join_with(f_edge)
        assert table.stats["join_cache_misses"] == 1
        assert table.stats["join_cache_hits"] == 1

    def test_interned_edge_count_reported(self, table):
        table.edge(table.system.var("F"))
        stats = table.cache_stats()
        # true/false plus F (seed constants are interned lazily on demand).
        assert stats["interned_edges"] == len(table._edges)

    def test_solver_stats_report_cache_counters(self):
        product_line = figure1()
        spllift = SPLLift(
            TaintAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        )
        results = spllift.solve()
        for key in (
            "compose_cache_hits",
            "compose_cache_misses",
            "join_cache_hits",
            "join_cache_misses",
            "interned_edges",
        ):
            assert key in results.stats, key
        assert results.stats["interned_edges"] > 0
        assert results.stats["compose_cache_hits"] >= 0
