"""Tests for the parallel solve layer (pool engine + partitioned solve).

The pool tests use module-level targets that only misbehave inside a
worker process (gated on the ``SPLLIFT_WORKER`` env var set by
``_child_main``), so crash and timeout paths exercise real SIGKILLed /
terminated processes without ever endangering the test process.
"""

import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyses import (
    PossibleTypesAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.core import SPLLift
from repro.core.parallel import (
    PARALLEL_ENV,
    ProcessTaskPool,
    resolve_parallel,
    solve_lifted_parallel,
)
from repro.spl.examples import device_spl, figure1_with_model
from repro.spl.generator import SubjectSpec, generate_subject


def _square(value):
    return value * value


def _boom(message):
    raise RuntimeError(message)


def _crash_once(marker):
    if os.environ.get("SPLLIFT_WORKER") and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(9)
    return "recovered"


def _crash_always():
    if os.environ.get("SPLLIFT_WORKER"):
        os._exit(9)
    return "inline"


def _sleep(seconds):
    time.sleep(seconds)
    return "done"


class TestResolveParallel:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_parallel(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "3")
        assert resolve_parallel(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "3")
        assert resolve_parallel(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_parallel(0) == max(1, os.cpu_count() or 1)
        assert resolve_parallel(-1) == max(1, os.cpu_count() or 1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "many")
        with pytest.raises(ValueError, match=PARALLEL_ENV):
            resolve_parallel(None)


class TestProcessTaskPool:
    def test_results_in_submission_order(self):
        pool = ProcessTaskPool(max_workers=3)
        outcomes = pool.run([(_square, (i,)) for i in range(8)])
        assert [o.result for o in outcomes] == [i * i for i in range(8)]
        assert all(o.ok and o.index == i for i, o in enumerate(outcomes))
        assert 1 <= pool.peak_workers <= 3

    def test_reported_error_is_terminal(self):
        pool = ProcessTaskPool(max_workers=2, max_retries=3)
        (outcome,) = pool.run([(_boom, ("no dice",))])
        assert not outcome.ok
        assert outcome.attempts == 1  # deterministic failure: no retry
        assert "RuntimeError: no dice" in outcome.error

    def test_crash_is_retried(self, tmp_path):
        marker = tmp_path / "crashed-once"
        pool = ProcessTaskPool(max_workers=2, max_retries=1)
        (outcome,) = pool.run([(_crash_once, (str(marker),))])
        assert marker.exists()  # the first attempt really died
        assert outcome.ok and outcome.result == "recovered"
        assert outcome.attempts == 2

    def test_zero_retries_fail_fast(self):
        pool = ProcessTaskPool(max_workers=2, max_retries=0)
        doomed, healthy = pool.run([(_crash_always, ()), (_square, (4,))])
        assert not doomed.ok
        assert doomed.attempts == 1
        assert "worker crashed" in doomed.error
        assert healthy.ok and healthy.result == 16

    def test_timeout_is_terminal(self):
        pool = ProcessTaskPool(max_workers=2, task_timeout=0.4, max_retries=3)
        (outcome,) = pool.run([(_sleep, (30,))])
        assert not outcome.ok
        assert outcome.attempts == 1
        assert "timed out" in outcome.error

    def test_use_pool_false_runs_inline(self):
        pool = ProcessTaskPool(max_workers=4, use_pool=False)
        ok, bad = pool.run([(_square, (3,)), (_boom, ("inline",))])
        assert ok.executor == "inline" and ok.result == 9
        assert bad.executor == "inline" and "RuntimeError" in bad.error
        assert pool.peak_workers == 0

    def test_degrades_inline_when_no_context(self, monkeypatch):
        def no_context():
            raise OSError("processes forbidden")

        monkeypatch.setattr("repro.core.parallel._pool_context", no_context)
        pool = ProcessTaskPool(max_workers=4)
        outcomes = pool.run([(_square, (i,)) for i in range(3)])
        assert [o.result for o in outcomes] == [0, 1, 4]
        assert all(o.executor == "inline" for o in outcomes)
        assert pool.peak_workers == 0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            ProcessTaskPool(max_retries=-1)


def _lift(product_line, analysis_class):
    return SPLLift(
        analysis_class(product_line.icfg),
        feature_model=product_line.feature_model,
    )


class TestSolveParallel:
    @pytest.mark.parametrize("builder", (figure1_with_model, device_spl))
    @pytest.mark.parametrize(
        "analysis_class", (UninitializedVariablesAnalysis, PossibleTypesAnalysis)
    )
    def test_parallel_digest_matches_sequential(self, builder, analysis_class):
        product_line = builder()
        sequential = _lift(product_line, analysis_class).solve()
        parallel = _lift(product_line, analysis_class).solve(parallel=3)
        assert parallel.result_digest() == sequential.result_digest()
        assert parallel.result_lines() == sequential.result_lines()

    def test_parallel_stats_report_partitions(self):
        product_line = device_spl()
        results = _lift(product_line, UninitializedVariablesAnalysis).solve(
            parallel=3
        )
        assert results.stats["parallel_partitions"] >= 2
        assert results.stats["parallel_workers"] >= 1

    def test_sequential_stats_report_one_worker(self):
        product_line = device_spl()
        results = _lift(product_line, UninitializedVariablesAnalysis).solve()
        assert results.stats["parallel_workers"] == 1
        assert results.stats["parallel_partitions"] == 1

    def test_single_seed_unit_falls_back(self):
        """Taint seeds only the 0-fact: nothing to partition, so the
        parallel layer declines and the sequential path answers."""
        product_line = figure1_with_model()
        spllift = _lift(product_line, TaintAnalysis)
        assert (
            solve_lifted_parallel(spllift, workers=4) is None
        )
        results = _lift(product_line, TaintAnalysis).solve(parallel=4)
        sequential = _lift(product_line, TaintAnalysis).solve()
        assert results.result_digest() == sequential.result_digest()
        assert results.stats["parallel_workers"] == 1

    def test_env_default_enables_parallelism(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "2")
        product_line = device_spl()
        via_env = _lift(product_line, UninitializedVariablesAnalysis).solve()
        monkeypatch.delenv(PARALLEL_ENV)
        sequential = _lift(product_line, UninitializedVariablesAnalysis).solve()
        assert via_env.result_digest() == sequential.result_digest()
        assert via_env.stats["parallel_partitions"] >= 2

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_generated_spls_parallel_equals_sequential(self, seed):
        spec = SubjectSpec(
            name=f"par-{seed}",
            seed=seed,
            classes=4,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=0.4,
            entry_fanout=4,
            reachable_features=("A", "B", "C"),
            dead_features=("DX",),
        )
        product_line = generate_subject(spec)
        sequential = _lift(product_line, UninitializedVariablesAnalysis).solve()
        parallel = _lift(product_line, UninitializedVariablesAnalysis).solve(
            parallel=2
        )
        assert parallel.result_digest() == sequential.result_digest()
