"""One test per lifting rule of the paper's Figure 4.

Each test builds a minimal product line that isolates one statement class,
lifts the taint (or uninit) analysis, and checks the computed constraints
against the rule:

- 4a: normal statements / call-to-return — enabled effect labeled F,
      disabled identity labeled ¬F, both → true;
- 4b: unconditional branches — enabled flow to the target (F), disabled
      fall-through (¬F);
- 4c: conditional branches — branch edge F, fall-through true;
- 4d: call and return — enabled flow labeled F, disabled kill-all.
"""

import pytest

from repro.analyses import LocalFact, TaintAnalysis, UninitializedVariablesAnalysis
from repro.core import SPLLift
from repro.ir import ICFG, Print, lower_program
from repro.minijava import parse_program


def lift_taint(source, feature_model=None):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    analysis = TaintAnalysis(icfg)
    results = SPLLift(analysis, feature_model=feature_model).solve()
    return icfg, results


def constraint_at_print(icfg, results):
    stmt = next(s for s in icfg.reachable_instructions() if isinstance(s, Print))
    return results.constraint_for(stmt, LocalFact(stmt.value.name))


class TestFigure4aNormal:
    def test_enabled_effect_labeled_with_condition(self):
        """x tainted only when the annotated source statement is enabled."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F) x = secret(); #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "F"

    def test_disabled_identity_labeled_with_negation(self):
        """The kill of x survives only the disabled case: leak iff !F."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = secret();
                #ifdef (F) x = 0; #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!F"

    def test_edges_in_both_cases_are_unconditional(self):
        """A fact untouched by the annotated statement passes with true."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = secret();
                int y = 0;
                #ifdef (F) y = 1; #endif
                print(x);
            } }
            """
        )
        assert constraint_at_print(icfg, results).is_true

    def test_sequence_of_annotations_conjoins(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                int y = 0;
                #ifdef (F) x = secret(); #endif
                #ifdef (G) y = x; #endif
                print(y);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "F & G"


class TestFigure4bUnconditionalBranch:
    def test_disabled_goto_falls_through(self):
        """A while loop's back-goto under ¬F: the loop body's taint only
        escapes along the fall-through when the goto is disabled.  We test
        the simpler observable: an annotated early return."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = secret();
                #ifdef (F) x = 0; #endif
                int i = 0;
                while (i < 2) { i = i + 1; }
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!F"

    def test_annotated_loop_both_cases(self):
        """Taint generated inside an annotated loop: leak iff F."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                int i = 0;
                #ifdef (F)
                while (i < 2) { x = secret(); i = i + 1; }
                #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "F"


class TestFigure4cConditionalBranch:
    def test_annotated_if_taints_only_when_enabled(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                int c = nondet();
                #ifdef (F)
                if (c < 1) { x = secret(); }
                #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "F"

    def test_disabled_conditional_falls_through(self):
        """Under ¬F the if-statement's kill inside the branch is skipped."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = secret();
                int c = nondet();
                #ifdef (F)
                if (c < 1) { x = 0; } else { x = 0; }
                #endif
                print(x);
            } }
            """
        )
        # Enabled: both branches kill; disabled: taint falls through.
        assert str(constraint_at_print(icfg, results)) == "!F"

    def test_unannotated_if_fall_through_is_unconditional(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = secret();
                int c = nondet();
                if (c < 1) { x = 0; }
                print(x);
            } }
            """
        )
        assert constraint_at_print(icfg, results).is_true


class TestFigure4dCallAndReturn:
    def test_annotated_call_uses_kill_all_when_disabled(self):
        """Figure 1's G annotation: the call's effect needs G; identity
        for the *result local* does NOT apply when disabled (kill-all) —
        y keeps its old (clean) value instead."""
        icfg, results = lift_taint(
            """
            class Main {
                void main() {
                    int x = secret();
                    int y = 0;
                    #ifdef (G) y = pass(x); #endif
                    print(y);
                }
                int pass(int p) { return p; }
            }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "G"

    def test_disabled_call_preserves_caller_locals(self):
        """Call-to-return identity under ¬F: the overwrite of y by the
        call only happens when enabled."""
        icfg, results = lift_taint(
            """
            class Main {
                void main() {
                    int y = secret();
                    #ifdef (F) y = zero(); #endif
                    print(y);
                }
                int zero() { return 0; }
            }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!F"

    def test_annotated_statement_inside_callee(self):
        """Figure 1's H annotation: the callee's kill needs H."""
        icfg, results = lift_taint(
            """
            class Main {
                void main() {
                    int x = secret();
                    int y = pass(x);
                    print(y);
                }
                int pass(int p) {
                    #ifdef (H) p = 0; #endif
                    return p;
                }
            }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!H"

    def test_annotated_return_constraint(self):
        """An annotated return flows back only when enabled; otherwise it
        falls through to the unannotated return."""
        icfg, results = lift_taint(
            """
            class Main {
                void main() {
                    int x = secret();
                    int y = choose(x);
                    print(y);
                }
                int choose(int p) {
                    #ifdef (R) return p; #endif
                    return 0;
                }
            }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "R"

    def test_disabled_return_falls_through(self):
        """Dual of the previous: the tainted value escapes through the
        second return only when the first is disabled."""
        icfg, results = lift_taint(
            """
            class Main {
                void main() {
                    int x = secret();
                    int y = choose(x);
                    print(y);
                }
                int choose(int p) {
                    #ifdef (R) return 0; #endif
                    return p;
                }
            }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!R"


class TestNestedAndComplexConditions:
    def test_nested_ifdef_conjunction(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F) #ifdef (G) x = secret(); #endif #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "F & G"

    def test_else_region_negation(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F) x = 0; #else x = secret(); #endif
                print(x);
            } }
            """
        )
        assert str(constraint_at_print(icfg, results)) == "!F"

    def test_disjunctive_condition(self):
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F || G) x = secret(); #endif
                print(x);
            } }
            """
        )
        constraint = results.system.parse("F || G")
        assert constraint_at_print(icfg, results) == constraint

    def test_two_paths_disjoin(self):
        """Section 3.4: merge points disjoin path constraints."""
        icfg, results = lift_taint(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F) x = secret(); #endif
                #ifdef (G) x = secret(); #endif
                print(x);
            } }
            """
        )
        # leak iff G | (F & !G-kill...): careful — second stmt kills x
        # when G. Path 1: F taints, G must not overwrite...? The second
        # statement re-taints, so overall: F | G.
        constraint = results.system.parse("F || G")
        assert constraint_at_print(icfg, results) == constraint
