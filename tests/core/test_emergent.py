"""Tests for emergent interfaces (Section 7 application)."""

import pytest

from repro.core.emergent import compute_emergent_interface
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program

SOURCE = """
class Main {
    void main() {
        int base = 10;
        int extra = 0;
        #ifdef (Discount)
        extra = base / 2;
        #endif
        int total = base + extra;
        print(total);
    }
}
"""


@pytest.fixture(scope="module")
def interface():
    icfg = ICFG.for_entry(lower_program(parse_program(SOURCE)))
    return compute_emergent_interface(icfg, "Discount")


class TestEmergentInterface:
    def test_provides_the_discounted_value(self, interface):
        provided_vars = {dep.variable for dep in interface.provides}
        assert "extra" in provided_vars

    def test_requires_the_base_value(self, interface):
        required_vars = {dep.variable for dep in interface.requires}
        assert "base" in required_vars

    def test_provide_constraint_is_discount(self, interface):
        extra_deps = [d for d in interface.provides if d.variable == "extra"]
        assert extra_deps
        for dep in extra_deps:
            assert str(dep.constraint) == "Discount"

    def test_unrelated_flows_excluded(self, interface):
        # base -> total is entirely outside the feature: not in the interface.
        for dep in interface.provides + interface.requires:
            assert not (dep.variable == "base" and "total" in str(dep.use))

    def test_str_rendering(self, interface):
        text = str(interface)
        assert "Discount" in text
        assert "provides" in text and "requires" in text


class TestInterProceduralInterface:
    def test_requires_through_annotated_call(self):
        source = """
        class Main {
            void main() {
                int raw = 5;
                int cooked = 0;
                #ifdef (Cook)
                cooked = prepare(raw);
                #endif
                print(cooked);
            }
            int prepare(int v) { return v * 2; }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        interface = compute_emergent_interface(icfg, "Cook")
        required = {dep.variable for dep in interface.requires}
        assert "raw" in required

    def test_provides_from_annotated_code_in_callee(self):
        """A definition under the feature inside a *callee* flows out to an
        unannotated use in the caller — the boundary crossing is detected
        through the rebinding of the reaching definition."""
        source = """
        class Main {
            void main() {
                int cooked = prepare(5);
                print(cooked);
            }
            int prepare(int v) {
                int r = v;
                #ifdef (Cook)
                r = v * 2;
                #endif
                return r;
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        interface = compute_emergent_interface(icfg, "Cook")
        provided = {dep.variable for dep in interface.provides}
        assert "cooked" in provided

    def test_feature_with_no_dependencies(self):
        source = """
        class Main {
            void main() {
                #ifdef (Independent)
                int a = 1;
                print(a);
                #endif
                int b = 2;
                print(b);
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        interface = compute_emergent_interface(icfg, "Independent")
        assert not interface.provides
        assert not interface.requires

    def test_feature_model_filters_dependencies(self):
        from repro.constraints import BddConstraintSystem
        from repro.analyses import ReachingDefinitionsAnalysis
        from repro.core import SPLLift

        source = """
        class Main {
            void main() {
                int x = 1;
                int y = 0;
                #ifdef (F)
                y = x;
                #endif
                print(y);
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        system = BddConstraintSystem()
        analysis = ReachingDefinitionsAnalysis(icfg)
        results = SPLLift(
            analysis, feature_model=system.parse("!F"), system=system
        ).solve()
        interface = compute_emergent_interface(icfg, "F", results=results)
        # Under the model F is never enabled: the interface is empty.
        assert not interface.provides
        assert not interface.requires
