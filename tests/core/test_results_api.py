"""Coverage of the SPLLiftResults public API."""

import pytest

from repro.analyses import LocalFact, TaintAnalysis
from repro.core import SPLLift
from repro.spl import device_spl, figure1


@pytest.fixture(scope="module")
def figure1_results():
    product_line = figure1()
    analysis = TaintAnalysis(product_line.icfg)
    spllift = SPLLift(analysis, feature_model=product_line.feature_model)
    return product_line, analysis, spllift.solve()


class TestResultsAPI:
    def test_constraint_for_unreachable_fact_is_false(self, figure1_results):
        _, analysis, results = figure1_results
        stmt = analysis.icfg.entry_points[0].start_point
        assert results.constraint_for(stmt, LocalFact("nonsense")).is_false

    def test_holds_in_full_configuration(self, figure1_results):
        _, analysis, results = figure1_results
        (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
        assert results.holds_in(stmt, fact, {"G"})
        assert not results.holds_in(stmt, fact, {"F", "G"})

    def test_holds_in_partial_configuration(self, figure1_results):
        _, analysis, results = figure1_results
        (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
        # Over only {G}: some extension (¬F, ¬H) admits the leak.
        assert results.holds_in(stmt, fact, {"G"}, over=("G",))
        assert not results.holds_in(stmt, fact, set(), over=("G",))

    def test_results_at_excludes_zero_by_default(self, figure1_results):
        _, analysis, results = figure1_results
        from repro.ifds import ZERO

        stmt = analysis.icfg.entry_points[0].start_point
        assert ZERO not in results.results_at(stmt)
        assert ZERO in results.results_at(stmt, include_zero=True)

    def test_items_iterates_pairs(self, figure1_results):
        _, _, results = figure1_results
        items = list(results.items())
        assert items
        (stmt, fact), value = items[0]
        assert hasattr(stmt, "location")

    def test_stats_and_timing(self, figure1_results):
        _, _, results = figure1_results
        assert results.stats["jump_functions"] > 0
        assert results.solve_seconds > 0

    def test_finding_constraint_unannotated_equals_constraint_for(
        self, figure1_results
    ):
        _, analysis, results = figure1_results
        (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
        assert stmt.annotation is None
        assert results.finding_constraint(stmt, fact) == results.constraint_for(
            stmt, fact
        )

    def test_finding_constraint_conjoins_annotation(self):
        product_line = device_spl()
        analysis = TaintAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        # Pick an annotated statement with a reachable zero fact.
        from repro.ifds import ZERO

        annotated = next(
            s
            for s in product_line.icfg.reachable_instructions()
            if s.annotation is not None
            and not results.constraint_for(s, ZERO).is_false
        )
        finding = results.finding_constraint(annotated, ZERO)
        annotation = results.system.from_formula(annotated.annotation)
        assert finding.entails(annotation)

    def test_config_is_valid(self):
        product_line = device_spl()
        analysis = TaintAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        features = product_line.features_reachable
        assert results.config_is_valid({"Buffering"}, features)
        # Encryption without Secure violates the model.
        assert not results.config_is_valid({"Encryption"}, features)

    def test_reachability_of_unreached_statement(self):
        product_line = figure1()
        analysis = TaintAnalysis(product_line.icfg)
        system_results = SPLLift(analysis).solve()
        foo = product_line.ir.method("Main.foo")
        assert str(system_results.reachability_of(foo.start_point)) == "G"
