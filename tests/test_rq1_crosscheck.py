"""RQ1 (Section 6.1): cross-checking SPLLIFT against the A2 oracle.

The paper's correctness methodology, reproduced in full:

- "Whenever A2 computes a fact r for some configuration c, we fetch
  SPLLIFT's computed feature constraint C for r (at the same statement),
  and check that C allows for c" — SPLLIFT is not overly restrictive
  (sound);
- "we traverse all of SPLLIFT's results (r, c) for the given fixed c, and
  check that the instance of A2 for c computed each such r as well" —
  SPLLIFT reports no false positives relative to A2 (precise).

Both directions are checked for every analysis on the running example,
hand-written SPLs, and generated subjects, over every configuration of
the reachable features.
"""

import itertools

import pytest

from repro.analyses import (
    NullnessAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines import solve_a2
from repro.core import SPLLift
from repro.spl import device_spl, figure1
from repro.spl.generator import SubjectSpec, generate_subject

ANALYSES = [
    TaintAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
    NullnessAnalysis,
]


def crosscheck(product_line, analysis_class, configurations=None):
    """Run the full two-direction RQ1 check; returns #configs checked."""
    analysis = analysis_class(product_line.icfg)
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    features = product_line.features_reachable
    if configurations is None:
        configurations = [
            frozenset(f for f, b in zip(features, bits) if b)
            for bits in itertools.product((False, True), repeat=len(features))
        ]
    checked = 0
    for config in configurations:
        # Only compare on valid configurations: SPLLIFT conjoins the
        # feature model, A2 does not filter by it.
        if not results.config_is_valid(config, features):
            continue
        a2_results = solve_a2(analysis, config)
        checked += 1
        for stmt in analysis.icfg.reachable_instructions():
            a2_facts = a2_results.at(stmt)
            for fact in a2_facts:
                assert results.holds_in(stmt, fact, config, over=features), (
                    "SPLLIFT overly restrictive",
                    stmt.location,
                    fact,
                    sorted(config),
                )
            for fact, constraint in results.results_at(stmt).items():
                if results.holds_in(stmt, fact, config, over=features):
                    assert fact in a2_facts, (
                        "SPLLIFT false positive vs A2",
                        stmt.location,
                        fact,
                        sorted(config),
                        str(constraint),
                    )
    assert checked > 0
    return checked


@pytest.mark.parametrize("analysis_class", ANALYSES)
def test_figure1_all_configurations(analysis_class):
    assert crosscheck(figure1(), analysis_class) == 8


@pytest.mark.parametrize("analysis_class", ANALYSES)
def test_device_spl_all_configurations(analysis_class):
    crosscheck(device_spl(), analysis_class)


@pytest.mark.parametrize("analysis_class", ANALYSES)
@pytest.mark.parametrize("seed", [11, 29, 47])
def test_generated_subjects(analysis_class, seed):
    spec = SubjectSpec(
        name=f"rq1-{seed}",
        seed=seed,
        classes=4,
        methods_per_class=(2, 3),
        statements_per_method=(4, 8),
        annotation_density=0.35,
        entry_fanout=5,
        reachable_features=("A", "B", "C"),
    )
    crosscheck(generate_subject(spec), analysis_class)


class TestHypothesisDrivenSubjects:
    """Property-based RQ1: random subject shapes, full oracle cross-check."""

    from hypothesis import given, settings, strategies as st

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        density=st.floats(min_value=0.1, max_value=0.6),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_subjects_crosscheck_taint(self, seed, density):
        spec = SubjectSpec(
            name=f"rq1-hyp-{seed}",
            seed=seed,
            classes=3,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=density,
            entry_fanout=4,
            reachable_features=("A", "B"),
        )
        crosscheck(generate_subject(spec), TaintAnalysis)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=8, deadline=None)
    def test_random_subjects_crosscheck_uninit(self, seed):
        spec = SubjectSpec(
            name=f"rq1-hypu-{seed}",
            seed=seed,
            classes=3,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=0.4,
            entry_fanout=4,
            reachable_features=("A", "B"),
            uninit_density=0.5,
        )
        crosscheck(generate_subject(spec), UninitializedVariablesAnalysis)
