"""Tests for the pluggable store backends (sqlite, HTTP) and open_store.

The concurrency tests run two real ``BatchScheduler`` processes against
one shared backend — one sqlite file, one served HTTP store — and
assert nothing corrupts and a follow-up run is served 100% warm.
"""

import json
import multiprocessing
import sqlite3
import threading

import pytest

from repro.service import (
    AnalysisJob,
    HttpStore,
    RemoteStoreError,
    ResultStore,
    SqliteStore,
    StoreBackend,
    make_server,
    open_store,
    run_batch,
)
from repro.spl.examples import FIGURE1_SOURCE

DIGEST = "ab" * 32


def _record(digest=DIGEST, **extra):
    record = {
        "schema": "spllift-result/v1",
        "digest": digest,
        "lines": ["Main.main:4|print(y);|y|!F & G & !H"],
    }
    record.update(extra)
    return record


def _job(analysis="taint", **kwargs):
    kwargs.setdefault("label", "fig1")
    kwargs.setdefault("source", FIGURE1_SOURCE)
    return AnalysisJob(analysis=analysis, **kwargs)


@pytest.fixture
def sqlite_store(tmp_path):
    return SqliteStore(tmp_path / "store.db")


@pytest.fixture
def served(tmp_path):
    """A served sqlite store: yields (client, server, backing store)."""
    backing = SqliteStore(tmp_path / "served.db")
    server = make_server(backing, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield HttpStore(f"http://{host}:{port}"), server, backing
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestOpenStore:
    def test_none_is_default_dir_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SPLLIFT_CACHE_DIR", str(tmp_path / "d"))
        store = open_store(None)
        assert isinstance(store, ResultStore)

    def test_path_spec(self, tmp_path):
        store = open_store(str(tmp_path / "cache"))
        assert isinstance(store, ResultStore)
        assert store.kind == "dir"

    def test_sqlite_spec(self, tmp_path):
        store = open_store(f"sqlite://{tmp_path / 'f.db'}")
        assert isinstance(store, SqliteStore)
        assert store.kind == "sqlite"

    def test_http_spec(self):
        store = open_store("http://127.0.0.1:9")
        assert isinstance(store, HttpStore)
        assert store.kind == "http"

    def test_all_backends_satisfy_protocol(self, tmp_path):
        for store in (
            ResultStore(tmp_path / "d"),
            SqliteStore(tmp_path / "f.db"),
            HttpStore("http://127.0.0.1:9"),
        ):
            assert isinstance(store, StoreBackend)


class TestSqliteRoundTrip:
    def test_put_then_get(self, sqlite_store):
        sqlite_store.put(_record())
        assert sqlite_store.contains(DIGEST)
        assert sqlite_store.get(DIGEST) == _record()

    def test_miss_on_absent(self, sqlite_store):
        assert sqlite_store.get(DIGEST) is None
        assert not sqlite_store.contains(DIGEST)

    def test_get_on_missing_file_does_not_create_it(self, sqlite_store):
        assert sqlite_store.get(DIGEST) is None
        assert not sqlite_store.path.exists()

    def test_put_overwrites(self, sqlite_store):
        sqlite_store.put(_record(facts=1))
        sqlite_store.put(_record(facts=2))
        assert sqlite_store.get(DIGEST)["facts"] == 2

    def test_put_requires_digest(self, sqlite_store):
        with pytest.raises(ValueError, match="digest"):
            sqlite_store.put({"schema": "spllift-result/v1"})

    def test_mis_keyed_record_is_a_miss(self, sqlite_store):
        """A row whose payload digest disagrees with its key fails open."""
        sqlite_store.put(_record())
        connection = sqlite_store._connect()
        connection.execute(
            "UPDATE records SET payload = ? WHERE digest = ?",
            (json.dumps(_record(digest="cd" * 32)), DIGEST),
        )
        connection.commit()
        assert sqlite_store.get(DIGEST) is None

    def test_corrupt_database_file_fails_open_on_reads(self, tmp_path):
        path = tmp_path / "broken.db"
        path.write_text("this is not a database")
        store = SqliteStore(path)
        assert store.get(DIGEST) is None
        assert not store.contains(DIGEST)

    def test_corrupt_database_file_surfaces_on_stats(self, tmp_path):
        path = tmp_path / "broken.db"
        path.write_text("this is not a database")
        with pytest.raises(sqlite3.Error):
            SqliteStore(path).stats()


class TestSqliteMaintenance:
    def test_stats_zeros_on_missing_file(self, sqlite_store):
        stats = sqlite_store.stats()
        assert stats["records"] == 0
        assert stats["bytes"] == 0
        assert stats["corrupt"] == 0
        assert stats["backend"] == "sqlite"
        assert not sqlite_store.path.exists()

    def test_stats_counts_by_kind(self, sqlite_store):
        sqlite_store.put(_record())
        sqlite_store.put(_record(digest="cd" * 32, schema="other/v1"))
        stats = sqlite_store.stats()
        assert stats["records"] == 2
        assert stats["bytes"] > 0
        assert stats["kinds"] == {"spllift-result/v1": 1, "other/v1": 1}

    def test_clear(self, sqlite_store):
        sqlite_store.put(_record())
        sqlite_store.put(_record(digest="cd" * 32))
        assert sqlite_store.clear() == 2
        assert sqlite_store.stats()["records"] == 0
        assert sqlite_store.clear() == 0

    def test_prune_evicts_least_recently_used(self, sqlite_store):
        digests = [f"{i:02x}" * 32 for i in range(4)]
        for digest in digests:
            sqlite_store.put(_record(digest=digest))
        # Reading the two oldest-written records makes them the *newest*
        # used — sqlite's last_used clock ranks by real use.
        sqlite_store.get(digests[0])
        sqlite_store.get(digests[1])
        before = sqlite_store.stats()["bytes"]
        summary = sqlite_store.prune(max_bytes=before // 2)
        assert summary["removed"] == 2
        assert not sqlite_store.contains(digests[2])
        assert not sqlite_store.contains(digests[3])
        assert sqlite_store.contains(digests[0])
        assert sqlite_store.contains(digests[1])

    def test_prune_negative_budget_rejected(self, sqlite_store):
        with pytest.raises(ValueError, match="max_bytes"):
            sqlite_store.prune(max_bytes=-1)

    def test_prune_zeros_on_missing_file(self, sqlite_store):
        summary = sqlite_store.prune(max_bytes=0)
        assert summary == {
            "removed": 0,
            "freed_bytes": 0,
            "remaining_bytes": 0,
            "remaining_records": 0,
        }


class TestHttpRoundTrip:
    def test_put_then_get(self, served):
        client, _, backing = served
        client.put(_record())
        assert client.contains(DIGEST)
        assert client.get(DIGEST) == _record()
        assert backing.contains(DIGEST)  # landed in the served store

    def test_miss_on_absent(self, served):
        client, _, _ = served
        assert client.get(DIGEST) is None
        assert not client.contains(DIGEST)

    def test_server_rejects_mis_keyed_put(self, served):
        client, _, backing = served
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            client._request(
                "PUT",
                f"/objects/{'cd' * 32}",
                body=json.dumps(_record()).encode(),
            )
        assert excinfo.value.code == 400
        assert not backing.contains("cd" * 32)

    def test_stats_and_health(self, served):
        client, _, _ = served
        client.put(_record())
        stats = client.stats()
        assert stats["records"] == 1
        assert stats["backend"] == "http"
        assert stats["url"].startswith("http://")
        assert client.health()["ok"] is True

    def test_clear_and_prune(self, served):
        client, _, _ = served
        client.put(_record())
        client.put(_record(digest="cd" * 32))
        summary = client.prune(max_bytes=0)
        assert summary["removed"] == 2
        client.put(_record())
        assert client.clear() == 1


class TestHttpFailOpen:
    def test_dead_server_reads_are_misses(self):
        from repro.obs import runtime as obs

        client = HttpStore("http://127.0.0.1:9", timeout=0.5)
        before = obs.metrics().counters.get("store.remote_errors", 0)
        assert client.get(DIGEST) is None
        assert not client.contains(DIGEST)
        client.put(_record())  # dropped, not raised
        after = obs.metrics().counters.get("store.remote_errors", 0)
        assert after >= before + 3

    def test_dead_server_admin_ops_raise(self):
        client = HttpStore("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteStoreError):
            client.stats()
        with pytest.raises(RemoteStoreError):
            client.health()

    def test_remote_store_error_is_oserror(self):
        # The CLI maps OSError to a one-line message; RemoteStoreError
        # must ride that path.
        assert issubclass(RemoteStoreError, OSError)


def _fleet_worker(spec, analyses, queue):
    """One scheduler process of the fleet (module-level: must pickle)."""
    jobs = [_job(analysis=analysis) for analysis in analyses]
    report = run_batch(jobs, store=open_store(spec), use_pool=False)
    queue.put(
        {
            "failed": report.failed,
            "digests": [o.result_digest for o in report.outcomes],
        }
    )


class TestConcurrentSchedulers:
    ANALYSES = ("taint", "uninit", "rd")

    def _run_fleet(self, spec):
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        workers = [
            context.Process(
                target=_fleet_worker, args=(spec, self.ANALYSES, queue)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
        return results

    def _assert_fleet_ok(self, spec, results):
        for result in results:
            assert result["failed"] == 0
        # Both schedulers computed (or were served) identical results.
        assert results[0]["digests"] == results[1]["digests"]
        # No corrupt records: every stored record round-trips and is
        # keyed by its own digest.
        store = open_store(spec)
        jobs = [_job(analysis=analysis) for analysis in self.ANALYSES]
        for job in jobs:
            record = store.get(job.digest)
            assert record is not None
            assert record["digest"] == job.digest
        # A third run is served 100% from the shared store.
        warm = run_batch(jobs, store=store, use_pool=False)
        assert warm.cached == len(jobs)
        assert warm.computed == 0

    def test_two_schedulers_one_sqlite_file(self, tmp_path):
        spec = f"sqlite://{tmp_path / 'fleet.db'}"
        self._assert_fleet_ok(spec, self._run_fleet(spec))

    def test_two_schedulers_one_served_store(self, served):
        client, server, _ = served
        spec = client.base_url
        self._assert_fleet_ok(spec, self._run_fleet(spec))
