"""Tests for dependency-DAG batch manifests and wave scheduling.

Manifest entries may carry ``id`` and ``after`` (a list of predecessor
ids); :func:`parse_manifest_plan` validates edges at parse time and the
scheduler dispatches in topological waves with store-first edges and
transitive failed-predecessor skips.
"""

import json

import pytest

from repro.service import (
    AnalysisJob,
    BatchScheduler,
    ResultStore,
    ServiceError,
    load_manifest_plan,
    parse_manifest_plan,
    run_batch,
)
from repro.spl.examples import FIGURE1_SOURCE

BROKEN_SOURCE = "class Main { void main() { this does not parse } }"


def _job(analysis="taint", **kwargs):
    kwargs.setdefault("label", "fig1")
    kwargs.setdefault("source", FIGURE1_SOURCE)
    return AnalysisJob(analysis=analysis, **kwargs)


def _manifest(entries):
    return {"schema": "spllift-batch/v1", "jobs": entries}


def _entry(job_id=None, after=None, analysis="taint", source=FIGURE1_SOURCE):
    entry = {"source": source, "analysis": analysis}
    if job_id is not None:
        entry["id"] = job_id
    if after is not None:
        entry["after"] = after
    return entry


DIAMOND = [
    _entry("a", analysis="taint"),
    _entry("b", after=["a"], analysis="uninit"),
    _entry("c", after=["a"], analysis="rd"),
    _entry("d", after=["b", "c"], analysis="types"),
]


class TestManifestParsing:
    def test_flat_manifest_has_no_dependencies(self):
        plan = parse_manifest_plan(_manifest([_entry(), _entry("x")]), None)
        assert not plan.has_dependencies
        assert plan.dependencies == ((), ())

    def test_auto_ids_for_unnamed_entries(self):
        plan = parse_manifest_plan(_manifest([_entry(), _entry("x")]), None)
        assert plan.ids == ("#0", "x")

    def test_diamond_edges_resolve_to_indices(self):
        plan = parse_manifest_plan(_manifest(DIAMOND), None)
        assert plan.has_dependencies
        assert plan.dependencies == ((), (0,), (0,), (1, 2))

    def test_topological_order_respects_edges(self):
        plan = parse_manifest_plan(_manifest(DIAMOND), None)
        order = plan.topological_order()
        position = {index: rank for rank, index in enumerate(order)}
        for index, predecessors in enumerate(plan.dependencies):
            for predecessor in predecessors:
                assert position[predecessor] < position[index]

    def test_cycle_rejected_at_parse_time(self):
        entries = [
            _entry("a", after=["b"]),
            _entry("b", after=["a"], analysis="uninit"),
        ]
        with pytest.raises(ServiceError, match="dependency cycle"):
            parse_manifest_plan(_manifest(entries), None)

    def test_unknown_dependency_id_rejected(self):
        entries = [_entry("a", after=["ghost"])]
        with pytest.raises(ServiceError, match="unknown dependency id"):
            parse_manifest_plan(_manifest(entries), None)

    def test_self_dependency_rejected(self):
        entries = [_entry("a", after=["a"])]
        with pytest.raises(ServiceError, match="depend on itself"):
            parse_manifest_plan(_manifest(entries), None)

    def test_duplicate_id_rejected(self):
        entries = [_entry("a"), _entry("a", analysis="uninit")]
        with pytest.raises(ServiceError, match="duplicate job id"):
            parse_manifest_plan(_manifest(entries), None)

    def test_after_must_be_string_list(self):
        with pytest.raises(ServiceError, match='"after" must be a list'):
            parse_manifest_plan(
                _manifest([{"source": FIGURE1_SOURCE, "analysis": "taint",
                            "after": "a"}]),
                None,
            )

    def test_load_manifest_plan_from_file(self, tmp_path):
        path = tmp_path / "dag.json"
        path.write_text(json.dumps(_manifest(DIAMOND)))
        plan = load_manifest_plan(path)
        assert len(plan.jobs) == 4
        assert plan.dependencies[3] == (1, 2)


class TestDagExecution:
    def test_diamond_executes_topologically(self, tmp_path):
        plan = parse_manifest_plan(_manifest(DIAMOND), None)
        store = ResultStore(tmp_path / "store")
        scheduler = BatchScheduler(store=store, use_pool=False)
        report = scheduler.run_plan(plan)
        assert report.computed == 4
        assert report.failed == 0 and report.skipped == 0
        assert report.waves == 3  # a | b,c | d
        # Dependent jobs record time spent blocked on predecessors.
        assert report.outcomes[0].wait_seconds == 0.0
        for outcome in report.outcomes[1:]:
            assert outcome.wait_seconds > 0.0
        assert report.outcomes[3].wait_seconds >= report.outcomes[1].wait_seconds

    def test_warm_diamond_is_one_wave(self, tmp_path):
        plan = parse_manifest_plan(_manifest(DIAMOND), None)
        store = ResultStore(tmp_path / "store")
        BatchScheduler(store=store, use_pool=False).run_plan(plan)
        warm = BatchScheduler(store=store, use_pool=False).run_plan(plan)
        assert warm.cached == 4
        assert warm.waves == 1
        assert warm.workers == 0

    def test_failed_predecessor_skips_transitively(self, tmp_path):
        entries = [
            _entry("a", source=BROKEN_SOURCE),
            _entry("b", after=["a"], analysis="uninit"),
            _entry("d", after=["b"], analysis="types"),
            _entry("lone", analysis="rd"),
        ]
        plan = parse_manifest_plan(_manifest(entries), None)
        report = BatchScheduler(use_pool=False).run_plan(plan)
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses == ["failed", "skipped", "skipped", "computed"]
        assert report.skipped == 2
        assert not report.ok
        for outcome in report.outcomes[1:3]:
            assert outcome.executor == "none"
            assert "predecessor failed" in outcome.error

    def test_cached_predecessor_settles_before_scheduling(self, tmp_path):
        """Store-first edges: a warm predecessor unblocks its dependents
        in the first wave."""
        store = ResultStore(tmp_path / "store")
        run_batch([_job()], store=store, use_pool=False)  # warm up "a"
        entries = [_entry("a"), _entry("b", after=["a"], analysis="uninit")]
        plan = parse_manifest_plan(_manifest(entries), None)
        report = BatchScheduler(store=store, use_pool=False).run_plan(plan)
        assert report.outcomes[0].status == "cached"
        assert report.outcomes[1].status == "computed"
        assert report.waves == 1

    def test_dependency_length_mismatch_rejected(self):
        with pytest.raises(ServiceError, match="dependency list covers"):
            BatchScheduler(use_pool=False).run([_job()], dependencies=[])

    def test_hand_built_deadlock_detected(self):
        # parse_manifest_plan can't produce this; the scheduler still
        # refuses to spin on an unsatisfiable dependency list.
        jobs = [_job(), _job(analysis="uninit")]
        with pytest.raises(ServiceError, match="deadlock"):
            BatchScheduler(use_pool=False).run(
                jobs, dependencies=[(1,), (0,)]
            )

    def test_report_rows_carry_wait_seconds(self, tmp_path):
        plan = parse_manifest_plan(_manifest(DIAMOND), None)
        report = BatchScheduler(use_pool=False).run_plan(plan)
        document = report.describe()
        assert document["waves"] == 3
        for row in document["jobs"]:
            assert "wait_seconds" in row
