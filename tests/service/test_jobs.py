"""Tests for the content-addressed job model and batch manifests."""

import json

import pytest

from repro.service import (
    AnalysisJob,
    ServiceError,
    canonical_analysis_name,
    canonical_feature_model_text,
    known_analyses,
    load_manifest,
    paper_campaign_jobs,
    parse_manifest,
)
from repro.spl import figure1_with_model
from repro.spl.examples import FIGURE1_SOURCE

FM_TEXT = """
featuremodel fig1
root Fig1 { optional F optional G optional H }
"""


class TestAnalysisNames:
    def test_aliases_canonicalize(self):
        assert canonical_analysis_name("types") == "possible_types"
        assert canonical_analysis_name("rd") == "reaching_definitions"
        assert canonical_analysis_name("uninit") == "uninitialized_variables"
        assert canonical_analysis_name("Possible Types") == "possible_types"

    def test_unknown_analysis_raises(self):
        with pytest.raises(ServiceError, match="unknown analysis"):
            canonical_analysis_name("points-to")

    def test_known_analyses_are_canonical(self):
        names = known_analyses()
        assert "possible_types" in names
        assert "types" not in names
        assert names == tuple(sorted(names))


class TestJobDigests:
    def test_digest_is_stable(self):
        a = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="taint")
        b = AnalysisJob(label="y", source=FIGURE1_SOURCE, analysis="taint")
        # The label is presentation-only; content decides identity.
        assert a.digest == b.digest

    def test_alias_and_canonical_name_share_digest(self):
        a = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="types")
        b = AnalysisJob(
            label="x", source=FIGURE1_SOURCE, analysis="possible_types"
        )
        assert a.analysis == b.analysis == "possible_types"
        assert a.digest == b.digest

    def test_source_changes_digest(self):
        a = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="taint")
        b = AnalysisJob(
            label="x", source=FIGURE1_SOURCE + "\n", analysis="taint"
        )
        assert a.digest != b.digest

    def test_fm_mode_changes_digest(self):
        a = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="taint")
        b = AnalysisJob(
            label="x", source=FIGURE1_SOURCE, analysis="taint", fm_mode="ignore"
        )
        assert a.digest != b.digest

    def test_private_options_excluded_from_digest(self):
        plain = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="taint")
        hooked = AnalysisJob(
            label="x",
            source=FIGURE1_SOURCE,
            analysis="taint",
            options={"_test_sleep": 30},
        )
        assert hooked.public_options == {}
        assert plain.digest == hooked.digest

    def test_public_options_change_digest(self):
        plain = AnalysisJob(label="x", source=FIGURE1_SOURCE, analysis="taint")
        ordered = AnalysisJob(
            label="x",
            source=FIGURE1_SOURCE,
            analysis="taint",
            options={"worklist_order": "lifo"},
        )
        assert plain.digest != ordered.digest

    def test_bad_fm_mode_raises(self):
        with pytest.raises(ServiceError, match="fm_mode"):
            AnalysisJob(
                label="x", source=FIGURE1_SOURCE, analysis="taint", fm_mode="no"
            )


class TestFeatureModelCanonicalization:
    def test_file_and_programmatic_model_share_digest(self, tmp_path):
        source_path = tmp_path / "fig1.mj"
        source_path.write_text(FIGURE1_SOURCE)
        fm_path = tmp_path / "fig1.fm"
        fm_path.write_text(FM_TEXT)
        from_files = AnalysisJob.from_files(
            str(source_path), "taint", feature_model=str(fm_path)
        )
        from repro.featuremodel import parse_feature_model

        from_memory = AnalysisJob(
            label="x",
            source=FIGURE1_SOURCE,
            analysis="taint",
            feature_model_text=canonical_feature_model_text(
                parse_feature_model(FM_TEXT)
            ),
        )
        assert from_files.digest == from_memory.digest

    def test_formatting_does_not_change_digest(self, tmp_path):
        """Same model, different whitespace — one canonical digest."""
        reformatted = FM_TEXT.replace(
            "{ optional F optional G optional H }",
            "{\n  optional F\n  optional G\n  optional H\n}",
        )
        assert reformatted != FM_TEXT
        source_path = tmp_path / "fig1.mj"
        source_path.write_text(FIGURE1_SOURCE)
        digests = []
        for index, text in enumerate((FM_TEXT, reformatted)):
            fm_path = tmp_path / f"m{index}.fm"
            fm_path.write_text(text)
            digests.append(
                AnalysisJob.from_files(
                    str(source_path), "taint", feature_model=str(fm_path)
                ).digest
            )
        assert digests[0] == digests[1]

    def test_empty_model_is_empty_text(self):
        from repro.featuremodel import FeatureModel

        assert canonical_feature_model_text(None) == ""
        assert canonical_feature_model_text(FeatureModel()) == ""

    def test_round_trips_through_job(self):
        product_line = figure1_with_model()
        job = AnalysisJob.from_product_line(product_line, "taint")
        model = job.feature_model()
        assert canonical_feature_model_text(model) == job.feature_model_text

    def test_unreadable_inputs_raise_service_error(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot read"):
            AnalysisJob.from_files(str(tmp_path / "missing.mj"), "taint")
        source_path = tmp_path / "fig1.mj"
        source_path.write_text(FIGURE1_SOURCE)
        fm_path = tmp_path / "bad.fm"
        fm_path.write_text("root A {{{")
        with pytest.raises(ServiceError, match="bad feature model"):
            AnalysisJob.from_files(
                str(source_path), "taint", feature_model=str(fm_path)
            )


class TestManifests:
    def test_paper_campaign_is_twelve_jobs(self):
        jobs = paper_campaign_jobs()
        assert len(jobs) == 12
        assert len({job.digest for job in jobs}) == 12
        labels = {job.label for job in jobs}
        assert labels == {
            "BerkeleyDB-like", "GPL-like", "Lampiro-like", "MM08-like"
        }

    def test_campaign_manifest(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text('{"campaign": "paper"}')
        assert len(load_manifest(str(manifest))) == 12

    def test_inline_source_job(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {"jobs": [{"source": FIGURE1_SOURCE, "analysis": "taint"}]}
            )
        )
        (job,) = load_manifest(str(manifest))
        assert job.analysis == "taint"
        assert job.source == FIGURE1_SOURCE

    def test_file_job_resolves_relative_to_manifest(self, tmp_path):
        (tmp_path / "fig1.mj").write_text(FIGURE1_SOURCE)
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps({"jobs": [{"file": "fig1.mj", "analysis": "taint"}]})
        )
        (job,) = load_manifest(str(manifest))
        assert job.source == FIGURE1_SOURCE

    def test_subject_job(self):
        jobs = parse_manifest(
            {"jobs": [{"subject": "GPL-like", "analysis": "types"}]},
            base_dir=None,
        )
        assert jobs[0].label == "GPL-like"
        assert jobs[0].analysis == "possible_types"

    @pytest.mark.parametrize(
        "document, message",
        (
            ([], "must be a JSON object"),
            ({"campaign": "nope"}, "unknown campaign"),
            ({"jobs": "x"}, '"jobs" must be a list'),
            ({"jobs": [[]]}, "must be a JSON object"),
            ({"jobs": [{"file": "a.mj"}]}, 'missing "analysis"'),
            ({"jobs": [{"analysis": "taint"}]}, "needs one of"),
            ({}, "no jobs"),
            (
                {"jobs": [{"subject": "Zelda", "analysis": "taint"}]},
                "unknown benchmark subject",
            ),
            (
                {"jobs": [{"source": "x", "analysis": "zzz"}]},
                "unknown analysis",
            ),
        ),
    )
    def test_bad_manifests_raise(self, document, message, tmp_path):
        with pytest.raises(ServiceError, match=message):
            parse_manifest(document, base_dir=tmp_path)

    def test_unparseable_manifest_file(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text("{not json")
        with pytest.raises(ServiceError, match="bad manifest"):
            load_manifest(str(manifest))

    def test_missing_manifest_file(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot read"):
            load_manifest(str(tmp_path / "missing.json"))
