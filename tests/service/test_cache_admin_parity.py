"""Admin-op parity for stores holding mixed record kinds.

``spllift cache stats/prune/clear`` must behave identically whether the
spec names a directory store, a ``sqlite://`` file or a served
``http://`` endpoint — and must treat summary records
(``spllift-summary/v1``) as first-class citizens: counted by kind,
pruned and cleared together with result records.
"""

import hashlib
import threading

import pytest

from repro.analyses import PossibleTypesAnalysis
from repro.cli import main
from repro.core import SPLLift
from repro.ide.summaries import SUMMARY_SCHEMA, summary_cache_for
from repro.service import make_server, open_store
from repro.spl import device_spl


def _fake_result_record():
    payload = "parity-test-result"
    return {
        "schema": "spllift-result/v1",
        "digest": hashlib.sha256(payload.encode()).hexdigest(),
        "subject": "parity-test",
        "lines": [],
    }


def _populate(spec):
    """One result record plus real summary records from a tiny solve."""
    store = open_store(spec)
    store.put(_fake_result_record())
    product_line = device_spl()
    spllift = SPLLift(
        PossibleTypesAnalysis(product_line.icfg),
        feature_model=product_line.feature_model,
    )
    spllift.solve(summaries=summary_cache_for(spllift, store))
    return store


@pytest.fixture(params=["dir", "sqlite", "http"])
def spec(request, tmp_path):
    if request.param == "dir":
        yield str(tmp_path / "cache")
        return
    if request.param == "sqlite":
        yield f"sqlite://{tmp_path / 'cache.db'}"
        return
    backing = open_store(f"sqlite://{tmp_path / 'served.db'}")
    server = make_server(backing, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestAdminParity:
    def test_stats_counts_summary_kind(self, spec, capsys):
        _populate(spec)
        assert main(["cache", "stats", "--cache-dir", spec]) == 0
        out = capsys.readouterr().out
        assert "spllift-result/v1: 1" in out
        kind_line = next(
            line for line in out.splitlines() if SUMMARY_SCHEMA in line
        )
        count = int(kind_line.rsplit(":", 1)[1])
        assert count > 0

    def test_clear_removes_all_kinds(self, spec, capsys):
        store = _populate(spec)
        before = store.stats()["records"]
        assert before > 1  # result + at least one summary

        assert main(["cache", "clear", "--cache-dir", spec]) == 0
        out = capsys.readouterr().out
        assert f"removed {before} record(s)" in out

        assert main(["cache", "stats", "--cache-dir", spec]) == 0
        out = capsys.readouterr().out
        assert "records:    0" in out

    def test_prune_to_zero_evicts_all_kinds(self, spec, capsys):
        _populate(spec)
        assert (
            main(
                ["cache", "prune", "--cache-dir", spec, "--max-bytes", "0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "remaining: 0 record(s), 0 bytes" in out

    def test_prune_under_budget_keeps_summaries(self, spec, capsys):
        store = _populate(spec)
        before = store.stats()["records"]
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    spec,
                    "--max-bytes",
                    "99999999",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"remaining: {before} record(s)" in out

    def test_warm_reuse_survives_generous_prune(self, spec):
        """Pruning under budget must leave the summaries usable — a warm
        solve afterwards still reuses (the end-to-end admin contract)."""
        store = _populate(spec)
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    spec,
                    "--max-bytes",
                    "99999999",
                ]
            )
            == 0
        )
        product_line = device_spl()
        spllift = SPLLift(
            PossibleTypesAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        )
        warm = spllift.solve(summaries=summary_cache_for(spllift, store))
        assert warm.stats["summaries_reused"] > 0
        assert warm.stats["summaries_invalidated"] == 0
