"""Tests for the store server's observability surface: the Prometheus
``/metrics`` endpoint, trace-context propagation, and the no-lock-
inversion guarantee between ``/metrics`` and store traffic."""

import json
import threading
import urllib.request

import pytest

from repro.obs import runtime as obs
from repro.service import make_server, open_store
from repro.service.backends.http import HttpStore
from repro.service.server import PARENT_SPAN_HEADER, RUN_ID_HEADER


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv(obs.RUN_ID_ENV, raising=False)
    obs.reset()
    yield
    monkeypatch.delenv(obs.RUN_ID_ENV, raising=False)
    obs.reset()


@pytest.fixture
def served(tmp_path):
    store = open_store(f"sqlite://{tmp_path / 'served.db'}")
    server = make_server(store, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=5)


def fetch(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def record(digest):
    return {"digest": digest, "results": {}, "stats": {}}


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, served):
        server, url = served
        obs.metrics().inc("server.requests", 0)  # ensure family exists
        status, body = fetch(f"{url}/metrics")
        assert status == 200
        assert "spllift_server_requests" in body
        # Counting itself: a second scrape sees the first.
        status, body = fetch(f"{url}/metrics")
        assert "spllift_server_metrics_requests" in body

    def test_metrics_never_takes_the_store_lock(self, served):
        server, url = served
        # Simulate a slow store operation holding the server-wide lock:
        # a scrape must still answer, because /metrics reads only the
        # in-process registry.
        with server.store_lock:
            status, body = fetch(f"{url}/metrics", timeout=5.0)
        assert status == 200
        assert body.startswith("#") or "spllift_" in body

    def test_concurrent_stats_and_metrics(self, served):
        """Hammer /stats and /metrics from many threads while PUTs flow;
        every request must answer — no deadlock, no lock inversion."""
        server, url = served
        client = HttpStore(url)
        failures = []

        def hit(path):
            for _ in range(10):
                try:
                    status, _ = fetch(f"{url}{path}")
                    if status != 200:
                        failures.append((path, status))
                except Exception as error:  # noqa: BLE001 - collect all
                    failures.append((path, repr(error)))

        threads = [
            threading.Thread(target=hit, args=(path,))
            for path in ("/stats", "/metrics", "/stats", "/metrics")
        ]
        for thread in threads:
            thread.start()
        for index in range(20):
            client.put(record(f"{index:08x}" + "0" * 56))
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "request thread hung"
        assert failures == []
        status, body = fetch(f"{url}/stats")
        assert json.loads(body)["records"] == 20


class TestPropagation:
    def test_client_sends_trace_context_headers(self, served):
        server, url = served
        run = obs.ensure_run_id()
        obs.flight().span_begin("scheduler/wave")
        try:
            HttpStore(url).contains("0" * 64)
        finally:
            obs.flight().span_end("scheduler/wave")
        # The server handler runs in this process: its request span
        # (recorded via the shared flight ring) carries the client ids.
        spans = [
            e for e in obs.flight().events()
            if e["kind"] == "span_begin" and e["name"] == "server/request"
        ]
        assert spans, "server opened no request span"
        assert spans[-1]["client_run_id"] == run
        assert spans[-1]["parent_span"] == "scheduler/wave"

    def test_headers_absent_without_run_id(self, served):
        server, url = served
        assert obs.run_id() is None
        HttpStore(url).contains("0" * 64)
        spans = [
            e for e in obs.flight().events()
            if e["kind"] == "span_begin" and e["name"] == "server/request"
        ]
        assert spans
        assert "client_run_id" not in spans[-1]
        assert "parent_span" not in spans[-1]

    def test_header_names_are_stable(self):
        assert RUN_ID_HEADER == "X-SPLLIFT-Run-Id"
        assert PARENT_SPAN_HEADER == "X-SPLLIFT-Parent-Span"
