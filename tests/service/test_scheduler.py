"""Tests for the batch scheduler: warm path, pool, crashes, timeouts.

The fault-injection hooks (``_test_crash_marker``, ``_test_crash_always``,
``_test_sleep``) only fire inside pool worker processes (gated on the
``SPLLIFT_WORKER`` env var), so the kill-mid-job tests here exercise the
real crash/retry machinery with real SIGKILLed processes.
"""

import time

import pytest

from repro.service import (
    AnalysisJob,
    BatchScheduler,
    ResultStore,
    execute_job,
    run_batch,
)
from repro.spl.examples import FIGURE1_SOURCE

BROKEN_SOURCE = "class Main { void main() { this does not parse } }"


def _job(analysis="taint", **kwargs):
    kwargs.setdefault("label", "fig1")
    kwargs.setdefault("source", FIGURE1_SOURCE)
    return AnalysisJob(analysis=analysis, **kwargs)


class TestWarmPath:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_batch([_job()], store=store, use_pool=False)
        assert cold.computed == 1 and cold.failed == 0
        warm = run_batch([_job()], store=store, use_pool=False)
        assert warm.cached == 1 and warm.computed == 0
        assert warm.outcomes[0].executor == "store"
        assert (
            cold.outcomes[0].result_digest == warm.outcomes[0].result_digest
        )

    def test_no_store_always_computes(self):
        for _ in range(2):
            report = run_batch([_job()], store=None, use_pool=False)
            assert report.computed == 1

    def test_different_jobs_do_not_alias(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_batch([_job()], store=store, use_pool=False)
        other = run_batch(
            [_job(analysis="uninit")], store=store, use_pool=False
        )
        assert other.computed == 1  # different digest: not served warm

    def test_report_shape(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = run_batch([_job()], store=store, use_pool=False)
        document = report.describe()
        assert document["schema"] == "spllift-batch-report/v1"
        assert document["computed"] == 1
        (row,) = document["jobs"]
        assert row["status"] == "computed"
        assert row["result_digest"]
        assert row["digest"] == _job().digest


class TestPoolEquivalence:
    def test_pool_matches_inline_digest(self, tmp_path):
        jobs = [_job(), _job(analysis="uninit")]
        pooled = run_batch(jobs, store=None, use_pool=True)
        assert pooled.failed == 0
        assert {o.executor for o in pooled.outcomes} <= {"pool", "inline"}
        for outcome, job in zip(pooled.outcomes, jobs):
            record = execute_job(job)
            assert outcome.result_digest == record["result_digest"]

    def test_pool_populates_store_for_warm_runs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        jobs = [_job()]
        cold = run_batch(jobs, store=store, use_pool=True)
        assert cold.failed == 0
        warm = run_batch(jobs, store=store, use_pool=True)
        assert warm.cached == 1
        assert (
            cold.outcomes[0].result_digest == warm.outcomes[0].result_digest
        )


class TestFailureHandling:
    def test_worker_error_is_terminal_not_a_crash(self):
        report = run_batch(
            [_job(source=BROKEN_SOURCE)], store=None, use_pool=True
        )
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1  # deterministic failure: no retry
        assert "ParseError" in outcome.error

    def test_inline_errors_are_isolated_per_job(self):
        report = run_batch(
            [_job(source=BROKEN_SOURCE), _job()], store=None, use_pool=False
        )
        first, second = report.outcomes
        assert first.status == "failed" and "ParseError" in first.error
        assert second.status == "computed"
        assert not report.ok

    def test_killed_worker_is_retried(self, tmp_path):
        marker = tmp_path / "crashed-once"
        job = _job(options={"_test_crash_marker": str(marker)})
        report = run_batch([job], store=None, use_pool=True, max_retries=1)
        outcome = report.outcomes[0]
        assert marker.exists()  # the first attempt really died
        assert outcome.status == "computed"
        assert outcome.attempts == 2
        assert outcome.result_digest == execute_job(_job())["result_digest"]

    def test_exhausted_retries_fail_the_job_not_the_batch(self):
        jobs = [_job(options={"_test_crash_always": True}), _job()]
        report = run_batch(jobs, store=None, use_pool=True, max_retries=1)
        doomed, healthy = report.outcomes
        assert doomed.status == "failed"
        assert doomed.attempts == 2  # initial + 1 retry
        assert "worker crashed" in doomed.error
        assert healthy.status == "computed"
        assert not report.ok

    def test_timeout_is_terminal(self):
        job = _job(options={"_test_sleep": 30})
        report = run_batch(
            [job], store=None, use_pool=True, job_timeout=0.5, max_retries=3
        )
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert "timed out" in outcome.error

    def test_crash_hooks_inert_inline(self, tmp_path):
        # A worker hook must never kill the calling process.
        marker = tmp_path / "never-created"
        job = _job(
            options={"_test_crash_marker": str(marker), "_test_crash_always": True}
        )
        report = run_batch([job], store=None, use_pool=False)
        assert report.outcomes[0].status == "computed"
        assert not marker.exists()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            BatchScheduler(max_retries=-1)

    def test_crash_with_zero_retries_fails_after_one_attempt(self):
        job = _job(options={"_test_crash_always": True})
        report = run_batch([job], store=None, use_pool=True, max_retries=0)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1  # no retry budget at all
        assert "worker crashed" in outcome.error


class TestWorkerReporting:
    def test_degraded_inline_reports_one_worker(self, monkeypatch):
        """The workers-reporting regression: a batch whose pool could not
        start must report the parallelism actually achieved (1, inline),
        not the configured maximum."""

        def no_context():
            raise OSError("processes forbidden")

        monkeypatch.setattr("repro.core.parallel._pool_context", no_context)
        report = run_batch(
            [_job(), _job(analysis="uninit")],
            store=None,
            use_pool=True,
            max_workers=8,
        )
        assert report.failed == 0
        assert report.workers == 1
        assert report.executors == {"inline": 2}
        document = report.describe()
        assert document["workers"] == 1
        assert document["executors"] == {"inline": 2}
        assert all(row["executor"] == "inline" for row in document["jobs"])

    def test_all_cached_batch_reports_zero_workers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_batch([_job()], store=store, use_pool=False)
        warm = run_batch([_job()], store=store, use_pool=True, max_workers=8)
        assert warm.cached == 1
        assert warm.workers == 0
        assert warm.executors == {"store": 1}

    def test_pool_batch_reports_achieved_workers(self):
        report = run_batch(
            [_job(), _job(analysis="uninit")], store=None, use_pool=True
        )
        if any(o.executor == "pool" for o in report.outcomes):
            assert 1 <= report.workers <= 2
        else:  # start-method unavailable: degraded inline
            assert report.workers == 1
        assert sum(report.executors.values()) == 2

    def test_wait_loop_does_not_busy_wait(self):
        """The busy-wait regression: while a worker sleeps, the parent
        must block in ``connection.wait`` and burn (almost) no CPU."""
        job = _job(options={"_test_sleep": 1.0})
        cpu_before = time.process_time()
        report = run_batch([job], store=None, use_pool=True)
        cpu_spent = time.process_time() - cpu_before
        if report.outcomes[0].executor == "pool":
            assert cpu_spent < 0.5, f"parent burned {cpu_spent:.3f}s CPU"


class TestCampaignEquivalence:
    def test_paper_campaign_pool_matches_single_process(self):
        """The acceptance check: the 12-job batch through the pool is
        bit-identical to single-process execution, job by job."""
        from repro.service import paper_campaign_jobs

        jobs = paper_campaign_jobs()
        report = run_batch(jobs, store=None, use_pool=True)
        assert report.failed == 0
        for outcome, job in zip(report.outcomes, jobs):
            record = execute_job(job)
            assert outcome.result_digest == record["result_digest"], (
                job.label,
                job.analysis,
            )
