"""Tests for the content-addressed on-disk result store."""

import json

import pytest

from repro.service import ResultStore, default_cache_dir

DIGEST = "ab" * 32


def _record(digest=DIGEST, **extra):
    record = {
        "schema": "spllift-result/v1",
        "digest": digest,
        "lines": ["Main.main:4|print(y);|y|!F & G & !H"],
    }
    record.update(extra)
    return record


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_then_get(self, store):
        store.put(_record())
        assert store.contains(DIGEST)
        assert store.get(DIGEST) == _record()

    def test_miss_on_absent(self, store):
        assert store.get(DIGEST) is None
        assert not store.contains(DIGEST)

    def test_sharded_layout(self, store):
        path = store.put(_record())
        assert path == store.path_for(DIGEST)
        assert path.parent.name == DIGEST[:2]
        assert path.name == f"{DIGEST}.json"

    def test_put_overwrites(self, store):
        store.put(_record(facts=1))
        store.put(_record(facts=2))
        assert store.get(DIGEST)["facts"] == 2

    def test_no_leftover_temp_files(self, store):
        store.put(_record())
        leftovers = [
            p for p in store.path_for(DIGEST).parent.iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestFailOpen:
    def test_corrupt_record_is_a_miss(self, store):
        path = store.put(_record())
        path.write_text("{definitely not json")
        assert store.get(DIGEST) is None

    def test_mis_keyed_record_is_a_miss(self, store):
        path = store.put(_record())
        path.write_text(json.dumps(_record(digest="cd" * 32)))
        assert store.get(DIGEST) is None

    def test_non_object_record_is_a_miss(self, store):
        path = store.put(_record())
        path.write_text('["a", "list"]')
        assert store.get(DIGEST) is None

    def test_put_requires_digest(self, store):
        with pytest.raises(ValueError, match="digest"):
            store.put({"schema": "spllift-result/v1"})


class TestMaintenance:
    def test_stats_empty(self, store):
        stats = store.stats()
        assert stats["records"] == 0
        assert stats["bytes"] == 0
        assert stats["kinds"] == {}
        assert stats["corrupt"] == 0

    def test_stats_counts_by_kind(self, store):
        store.put(_record())
        store.put(_record(digest="cd" * 32, schema="other/v1"))
        stats = store.stats()
        assert stats["records"] == 2
        assert stats["bytes"] > 0
        assert stats["kinds"] == {"spllift-result/v1": 1, "other/v1": 1}
        assert stats["corrupt"] == 0

    def test_stats_counts_agree_on_corrupt_records(self, store):
        """The single-pass regression: ``records`` counts every file and
        ``kinds``/``corrupt`` partition it, even with corrupt records
        (the old double-walk let the two passes disagree)."""
        store.put(_record())
        store.put(_record(digest="cd" * 32, schema="other/v1"))
        store.put(_record(digest="ef" * 32)).write_text("{broken json")
        store.put(_record(digest="12" * 32)).write_text('["not", "a", "dict"]')
        stats = store.stats()
        assert stats["records"] == 4
        assert stats["corrupt"] == 2
        assert stats["kinds"] == {"spllift-result/v1": 1, "other/v1": 1}
        assert stats["records"] == sum(stats["kinds"].values()) + stats["corrupt"]

    def test_iter_records_skips_corrupt(self, store):
        store.put(_record())
        path = store.put(_record(digest="cd" * 32))
        path.write_text("{broken")
        records = list(store.iter_records())
        assert len(records) == 1
        assert records[0]["digest"] == DIGEST

    def test_clear(self, store):
        store.put(_record())
        store.put(_record(digest="cd" * 32))
        assert store.clear() == 2
        assert store.stats()["records"] == 0
        assert store.clear() == 0


class TestPrune:
    def _fill(self, store, count):
        """Insert ``count`` records with strictly increasing use times."""
        import os

        paths = []
        for i in range(count):
            digest = f"{i:02x}" * 32
            path = store.put(_record(digest=digest))
            stamp = 1_000_000 + i * 100
            os.utime(path, (stamp, stamp))
            paths.append((digest, path))
        return paths

    def test_noop_under_budget(self, store):
        self._fill(store, 3)
        before = store.stats()
        summary = store.prune(max_bytes=before["bytes"])
        assert summary["removed"] == 0
        assert summary["freed_bytes"] == 0
        assert store.stats()["records"] == 3

    def test_evicts_least_recently_used_first(self, store):
        paths = self._fill(store, 6)
        sizes = [p.stat().st_size for _, p in paths]
        budget = sum(sizes[3:])  # room for exactly the 3 newest
        summary = store.prune(max_bytes=budget)
        assert summary["removed"] == 3
        for digest, _ in paths[:3]:
            assert not store.contains(digest)
        for digest, _ in paths[3:]:
            assert store.contains(digest)

    def test_prune_to_zero_removes_everything(self, store):
        self._fill(store, 4)
        summary = store.prune(max_bytes=0)
        assert summary["removed"] == 4
        assert summary["remaining_bytes"] == 0
        assert summary["remaining_records"] == 0
        assert store.stats()["records"] == 0

    def test_empty_shards_are_removed(self, store):
        paths = self._fill(store, 2)
        store.prune(max_bytes=0)
        for _, path in paths:
            assert not path.parent.exists()

    def test_idempotent(self, store):
        self._fill(store, 4)
        budget = store.stats()["bytes"] // 2
        store.prune(max_bytes=budget)
        summary = store.prune(max_bytes=budget)
        assert summary["removed"] == 0

    def test_negative_budget_rejected(self, store):
        with pytest.raises(ValueError, match="max_bytes"):
            store.prune(max_bytes=-1)

    def test_summary_accounting(self, store):
        self._fill(store, 5)
        before = store.stats()["bytes"]
        summary = store.prune(max_bytes=before // 3)
        assert summary["freed_bytes"] + summary["remaining_bytes"] == before
        assert summary["remaining_records"] == store.stats()["records"]
        assert summary["remaining_bytes"] <= before // 3

    def test_prune_on_empty_store(self, store):
        summary = store.prune(max_bytes=0)
        assert summary == {
            "removed": 0,
            "freed_bytes": 0,
            "remaining_bytes": 0,
            "remaining_records": 0,
        }

    def test_mtime_clock_on_noatime_mounts(self, store):
        """On a noatime mount reads never advance atime, so every record
        shows a stale constant atime; LRU must fall back to mtime for
        *all* entries instead of mixing the two clocks per file."""
        import os

        paths = []
        for i in range(4):
            digest = f"{i:02x}" * 32
            path = store.put(_record(digest=digest))
            os.utime(path, (500_000, 1_000_000 + i * 100))
            paths.append((digest, path))
        sizes = [p.stat().st_size for _, p in paths]
        summary = store.prune(max_bytes=sum(sizes[2:]))
        assert summary["removed"] == 2
        for digest, _ in paths[:2]:
            assert not store.contains(digest)
        for digest, _ in paths[2:]:
            assert store.contains(digest)

    def test_atime_clock_when_reads_are_tracked(self, store):
        """When atimes demonstrably advance past mtimes, reads are the
        LRU clock — even where it disagrees with write order."""
        import os

        paths = []
        for i in range(4):
            digest = f"{i:02x}" * 32
            path = store.put(_record(digest=digest))
            # Write clock runs backwards; read clock runs forwards.
            mtime = 1_000_000 - i * 100
            atime = 2_000_000 + i * 100
            os.utime(path, (atime, mtime))
            paths.append((digest, path))
        sizes = [p.stat().st_size for _, p in paths]
        summary = store.prune(max_bytes=sum(sizes[2:]))
        assert summary["removed"] == 2
        # Least-recently-*read* evicted first, despite newest mtimes.
        for digest, _ in paths[:2]:
            assert not store.contains(digest)
        for digest, _ in paths[2:]:
            assert store.contains(digest)


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SPLLIFT_CACHE_DIR", str(tmp_path / "here"))
        assert default_cache_dir() == tmp_path / "here"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("SPLLIFT_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "spllift"
