"""Unit tests for the A2 configuration-specific baseline."""

import pytest

from repro.analyses import LocalFact, TaintAnalysis
from repro.baselines import A2Problem, solve_a2
from repro.core.icfg import LiftedICFG
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, lower_program
from repro.minijava import derive_product, parse_program
from repro.spl import figure1


@pytest.fixture
def figure1_analysis():
    product_line = figure1()
    return product_line, TaintAnalysis(product_line.icfg)


def leaks(analysis, results):
    return [
        stmt.location
        for stmt, fact in TaintAnalysis.sink_queries(analysis.icfg)
        if fact in results.at(stmt)
    ]


class TestA2OnFigure1:
    def test_leaking_configuration(self, figure1_analysis):
        _, analysis = figure1_analysis
        results = solve_a2(analysis, {"G"})
        assert leaks(analysis, results)

    @pytest.mark.parametrize(
        "config",
        [set(), {"F"}, {"H"}, {"F", "G"}, {"G", "H"}, {"F", "H"}, {"F", "G", "H"}],
    )
    def test_non_leaking_configurations(self, figure1_analysis, config):
        _, analysis = figure1_analysis
        results = solve_a2(analysis, config)
        assert not leaks(analysis, results)

    def test_a2_matches_preprocessed_product(self, figure1_analysis):
        """A2 on the product line ≡ plain IFDS on the derived product,
        compared at the sink."""
        product_line, analysis = figure1_analysis
        for config in (set(), {"G"}, {"F", "G"}, {"G", "H"}, {"F", "G", "H"}):
            a2_results = solve_a2(analysis, config)
            a2_leak = bool(leaks(analysis, a2_results))
            product = derive_product(product_line.ast, config)
            icfg = ICFG.for_entry(lower_program(product))
            product_results = IFDSSolver(TaintAnalysis(icfg)).solve()
            product_leak = any(
                fact in product_results.at(stmt)
                for stmt, fact in TaintAnalysis.sink_queries(icfg)
            )
            assert a2_leak == product_leak, config


class TestA2Mechanics:
    def test_wraps_icfg_as_lifted(self, figure1_analysis):
        _, analysis = figure1_analysis
        problem = A2Problem(analysis, set())
        assert isinstance(problem.icfg, LiftedICFG)

    def test_enabled_evaluation(self, figure1_analysis):
        _, analysis = figure1_analysis
        problem = A2Problem(analysis, {"F"})
        main = analysis.icfg.program.method("Main.main")
        annotated_f = main.instructions[2]  # x = 0 under F
        annotated_g = main.instructions[3]  # call under G
        assert problem.enabled(annotated_f)
        assert not problem.enabled(annotated_g)
        assert problem.enabled(main.instructions[0])  # unannotated

    def test_disabled_goto_falls_through(self):
        source = """
        class Main { void main() {
            int x = secret();
            int i = 0;
            #ifdef (Loop)
            while (i < 2) { x = 0; i = i + 1; }
            #endif
            print(x);
        } }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        analysis = TaintAnalysis(icfg)
        # Loop disabled: the kill never executes -> leak.
        assert leaks(analysis, solve_a2(analysis, set()))
        # Loop enabled: x is killed on the looping path but the zero-trip
        # path still leaks; both are may-paths, so the leak remains.
        assert leaks(analysis, solve_a2(analysis, {"Loop"}))

    def test_disabled_return_falls_through(self):
        source = """
        class Main {
            void main() { int x = secret(); int y = f(x); print(y); }
            int f(int p) {
                #ifdef (Early) return 0; #endif
                return p;
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        analysis = TaintAnalysis(icfg)
        assert leaks(analysis, solve_a2(analysis, set()))
        assert not leaks(analysis, solve_a2(analysis, {"Early"}))

    def test_mapping_configuration_accepted(self, figure1_analysis):
        _, analysis = figure1_analysis
        results = solve_a2(analysis, {"F": False, "G": True, "H": False})
        assert leaks(analysis, results)
