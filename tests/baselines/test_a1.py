"""Tests for the A1 generate-and-analyze baseline."""

import pytest

from repro.analyses import TaintAnalysis
from repro.baselines import run_a1
from repro.core import SPLLift
from repro.spl import figure1


@pytest.fixture(scope="module")
def figure1_runs():
    product_line = figure1()
    configurations = list(product_line.valid_configurations())
    outcome = run_a1(product_line.ast, configurations, TaintAnalysis)
    return product_line, outcome


class TestA1:
    def test_analyzes_every_product(self, figure1_runs):
        product_line, outcome = figure1_runs
        assert outcome.product_count == 8

    def test_products_differ(self, figure1_runs):
        _, outcome = figure1_runs
        sizes = {run.icfg.instruction_count() for run in outcome.runs}
        assert len(sizes) > 1  # preprocessing really removed code

    def test_timings_recorded(self, figure1_runs):
        _, outcome = figure1_runs
        assert outcome.total_seconds > 0
        for run in outcome.runs:
            assert run.seconds >= 0
            assert run.build_seconds >= 0

    def test_exactly_one_product_leaks(self, figure1_runs):
        _, outcome = figure1_runs
        leaking = []
        for run in outcome.runs:
            hit = any(
                fact in run.results.at(stmt)
                for stmt, fact in TaintAnalysis.sink_queries(run.icfg)
            )
            if hit:
                leaking.append(run.configuration)
        assert leaking == [frozenset({"G"})]

    def test_a1_agrees_with_spllift(self, figure1_runs):
        """The generate-and-analyze ground truth against the single-pass
        lifted result, per configuration, at the sink."""
        product_line, outcome = figure1_runs
        analysis = TaintAnalysis(product_line.icfg)
        lifted = SPLLift(analysis, feature_model=product_line.feature_model).solve()
        (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
        constraint = lifted.constraint_for(stmt, fact)
        for run in outcome.runs:
            product_leak = any(
                f in run.results.at(s)
                for s, f in TaintAnalysis.sink_queries(run.icfg)
            )
            assert product_leak == constraint.satisfied_by(run.configuration)

    def test_cutoff_stops_early(self):
        product_line = figure1()
        configurations = list(product_line.valid_configurations())
        outcome = run_a1(
            product_line.ast, configurations, TaintAnalysis, cutoff_seconds=0.0
        )
        assert outcome.product_count == 1  # stopped after the first run
