"""End-to-end tests of the paper's running example (Figures 1, 3, 5).

These are the paper's own acceptance criteria:

- the derived product for ¬F ∧ G ∧ ¬H leaks the secret (Figure 1b / 3);
- SPLLIFT computes exactly the constraint ¬F ∧ G ∧ ¬H for the leak in a
  single pass over the product line (Figure 5, Section 3.5);
- under the feature model F ↔ G the leak constraint becomes false
  (Section 1).
"""

import itertools

import pytest

from repro.analyses import LocalFact, TaintAnalysis
from repro.core import SPLLift
from repro.ifds import IFDSSolver, build_exploded_graph
from repro.ir import ICFG, Print, lower_program
from repro.minijava import derive_product, parse_program
from repro.spl import figure1, figure1_with_model

FEATURES = ("F", "G", "H")


@pytest.fixture(scope="module")
def lifted():
    product_line = figure1()
    analysis = TaintAnalysis(product_line.icfg)
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    return product_line, analysis, results


def leak_constraint(analysis, results):
    (query,) = TaintAnalysis.sink_queries(analysis.icfg)
    stmt, fact = query
    return results.constraint_for(stmt, fact)


class TestFigure5:
    def test_leak_constraint_is_not_f_and_g_and_not_h(self, lifted):
        product_line, analysis, results = lifted
        constraint = leak_constraint(analysis, results)
        expected = results.system.parse("!F && G && !H")
        assert constraint == expected

    def test_single_pass_covers_all_products(self, lifted):
        """Check the constraint against all 8 preprocessed products."""
        product_line, analysis, results = lifted
        constraint = leak_constraint(analysis, results)
        for bits in itertools.product((False, True), repeat=3):
            config = {f for f, b in zip(FEATURES, bits) if b}
            product = derive_product(product_line.ast, config)
            icfg = ICFG.for_entry(lower_program(product))
            product_results = IFDSSolver(TaintAnalysis(icfg)).solve()
            leaked = any(
                fact in product_results.at(stmt)
                for stmt, fact in TaintAnalysis.sink_queries(icfg)
            )
            assert leaked == constraint.satisfied_by(config), config

    def test_only_one_of_eight_products_leaks(self, lifted):
        product_line, analysis, results = lifted
        constraint = leak_constraint(analysis, results)
        assert constraint.model_count(FEATURES) == 1
        (model,) = constraint.models(FEATURES)
        assert model == {"F": False, "G": True, "H": False}


class TestFeatureModel:
    def test_f_iff_g_makes_leak_impossible(self):
        product_line = figure1_with_model()
        analysis = TaintAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        assert leak_constraint(analysis, results).is_false

    def test_section1_equation(self):
        """(¬F ∧ G ∧ ¬H) ∧ (F ↔ G) = false."""
        from repro.constraints import BddConstraintSystem

        system = BddConstraintSystem()
        assert (system.parse("!F && G && !H") & system.parse("F <-> G")).is_false


class TestFigure3:
    def test_exploded_graph_of_product(self):
        product = derive_product(figure1().ast, {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        graph = build_exploded_graph(TaintAnalysis(icfg))
        # The violating path from (secret-assign, 0) to (print, y) exists.
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert (print_stmt, LocalFact("y")) in graph.nodes
        dot = graph.to_dot()
        assert "digraph" in dot

    def test_exploded_graph_edge_kinds(self):
        product = derive_product(figure1().ast, {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        graph = build_exploded_graph(TaintAnalysis(icfg))
        kinds = {edge.kind for edge in graph.edges}
        assert kinds == {"normal", "call", "return", "call-to-return"}


class TestReachability:
    """Section 3.3: 0-fact values are reachability constraints."""

    def test_unconditional_statements_reachable_everywhere(self, lifted):
        product_line, analysis, results = lifted
        main = product_line.ir.method("Main.main")
        for instruction in main.instructions:
            assert results.reachability_of(instruction).is_true

    def test_callee_reachability(self, lifted):
        """foo's body is only reachable through the G-annotated call."""
        product_line, analysis, results = lifted
        foo = product_line.ir.method("Main.foo")
        for instruction in foo.instructions:
            constraint = results.reachability_of(instruction)
            assert str(constraint) == "G"

    def test_code_unreachable_under_model(self):
        source = """
        class Main {
            void main() {
                int x = 0;
                #ifdef (A) x = helper(); #endif
                print(x);
            }
            int helper() { return 1; }
        }
        """
        from repro.constraints import BddConstraintSystem

        system = BddConstraintSystem()
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        analysis = TaintAnalysis(icfg)
        results = SPLLift(
            analysis, feature_model=system.parse("!A"), system=system
        ).solve()
        helper = icfg.program.method("Main.helper")
        for instruction in helper.instructions:
            assert results.reachability_of(instruction).is_false
