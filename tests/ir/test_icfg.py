"""Tests for the inter-procedural CFG."""

import pytest

from repro.ir import Goto, ICFG, If, Invoke, IRError, Print, Return, lower_program
from repro.minijava import parse_program
from repro.spl.examples import FIGURE1_SOURCE


def icfg_for(source, entry="Main.main"):
    return ICFG.for_entry(lower_program(parse_program(source)), entry)


class TestSuccessors:
    def test_straightline(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        main = icfg.program.method("Main.main")
        for instr in main.instructions[:-1]:
            succs = icfg.successors_of(instr)
            assert succs == (main.instructions[instr.index + 1],)

    def test_return_has_no_successors(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        for method in icfg.reachable_methods:
            for exit_point in icfg.exit_points_of(method):
                assert icfg.successors_of(exit_point) == ()

    def test_if_successor_order(self):
        icfg = icfg_for(
            "class Main { void main() { int x = 1; if (x < 2) { x = 3; } print(x); } }"
        )
        main = icfg.program.method("Main.main")
        if_instr = next(i for i in main.instructions if isinstance(i, If))
        fall_through, target = icfg.successors_of(if_instr)
        assert fall_through is main.instructions[if_instr.index + 1]
        assert target is main.instructions[if_instr.target]

    def test_goto_single_successor(self):
        icfg = icfg_for(
            "class Main { void main() { int x = 0; while (x < 3) { x = x + 1; } } }"
        )
        main = icfg.program.method("Main.main")
        for goto in (i for i in main.instructions if isinstance(i, Goto)):
            assert icfg.successors_of(goto) == (main.instructions[goto.target],)


class TestClassification:
    def test_call_and_exit_classification(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        calls = [i for i in icfg.reachable_instructions() if icfg.is_call(i)]
        assert len(calls) == 1
        assert all(isinstance(c, Invoke) for c in calls)
        exits = [i for i in icfg.reachable_instructions() if icfg.is_exit(i)]
        assert all(isinstance(e, Return) for e in exits)

    def test_return_sites(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        call = next(i for i in icfg.reachable_instructions() if icfg.is_call(i))
        (site,) = icfg.return_sites_of(call)
        assert isinstance(site, Print)

    def test_callees(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        call = next(i for i in icfg.reachable_instructions() if icfg.is_call(i))
        assert [m.qualified_name for m in icfg.callees_of(call)] == ["Main.foo"]

    def test_method_of_and_start_point(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        foo = icfg.program.method("Main.foo")
        assert icfg.method_of(foo.instructions[1]) is foo
        assert icfg.start_point_of(foo) is foo.instructions[0]

    def test_call_sites_in(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        main = icfg.program.method("Main.main")
        assert len(list(icfg.call_sites_in(main))) == 1


class TestMetrics:
    def test_instruction_count(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        assert icfg.instruction_count() == sum(
            len(m.instructions) for m in icfg.reachable_methods
        )

    def test_annotated_feature_names(self):
        icfg = icfg_for(FIGURE1_SOURCE)
        assert icfg.annotated_feature_names() == {"F", "G", "H"}

    def test_unreachable_annotations_not_counted(self):
        source = """
        class Main {
            void main() { int x = 1; }
            int dead() {
                int d = 0;
                #ifdef (DeadFeature) d = 1; #endif
                return d;
            }
        }
        """
        icfg = icfg_for(source)
        assert icfg.annotated_feature_names() == frozenset()


class TestErrors:
    def test_missing_entry(self):
        with pytest.raises(IRError):
            icfg_for("class Main { void main() { } }", entry="Main.nope")

    def test_no_entry_points(self):
        program = lower_program(parse_program("class Main { void main() { } }"))
        with pytest.raises(IRError):
            ICFG(program, ())

    def test_call_without_targets(self):
        # a call to a method that only exists under an annotation that was
        # never compiled in is impossible by construction; simulate a dead
        # hierarchy via an interface-less class with no implementation by
        # removing the method from the program after lowering
        program = lower_program(
            parse_program(
                "class A { int m() { return 1; } } "
                "class Main { void main() { A a = new A(); int x = a.m(); } }"
            )
        )
        del program.classes["A"].methods["m"]
        with pytest.raises(IRError):
            ICFG(program, (program.method("Main.main"),))
