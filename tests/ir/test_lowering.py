"""Tests for AST → Jimple-like IR lowering."""

import pytest

from repro.constraints.formula import And, Var
from repro.ir import (
    Assign,
    BinOp,
    Const,
    Declare,
    FieldLoad,
    FieldStore,
    Goto,
    If,
    Invoke,
    LocalRef,
    LoweringError,
    NewObject,
    Print,
    Return,
    SecretValue,
    lower_program,
)
from repro.minijava import parse_program


def lower_main(body: str, extra: str = ""):
    program = parse_program(
        f"class Main {{ void main() {{ {body} }} {extra} }}"
    )
    return lower_program(program).method("Main.main")


class TestBasicLowering:
    def test_var_decl_with_init(self):
        method = lower_main("int x = 1;")
        assert isinstance(method.instructions[0], Assign)
        assert method.instructions[0].target == "x"
        assert method.instructions[0].rvalue == Const(1)

    def test_var_decl_without_init_emits_declare(self):
        method = lower_main("int x;")
        assert isinstance(method.instructions[0], Declare)
        assert method.instructions[0].name == "x"

    def test_implicit_trailing_return(self):
        method = lower_main("int x = 1;")
        assert isinstance(method.instructions[-1], Return)

    def test_no_duplicate_trailing_return(self):
        method = lower_main("return;")
        returns = [i for i in method.instructions if isinstance(i, Return)]
        assert len(returns) == 1

    def test_expression_flattening_creates_temps(self):
        method = lower_main("int x = 1 + 2 * 3;")
        # 2 * 3 goes into a temp, then 1 + temp into x.
        assigns = [i for i in method.instructions if isinstance(i, Assign)]
        assert assigns[0].target.startswith("$t")
        assert assigns[1].target == "x"
        assert isinstance(assigns[1].rvalue, BinOp)

    def test_secret_intrinsic(self):
        method = lower_main("int x = secret();")
        assert method.instructions[0].rvalue == SecretValue()

    def test_nondet_intrinsic(self):
        from repro.ir import NondetValue

        method = lower_main("int x = nondet();")
        assert method.instructions[0].rvalue == NondetValue()

    def test_print(self):
        method = lower_main("int x = 1; print(x);")
        assert isinstance(method.instructions[1], Print)

    def test_print_of_expression_flattens(self):
        method = lower_main("int x = 1; print(x + 1);")
        kinds = [type(i).__name__ for i in method.instructions]
        assert kinds[:3] == ["Assign", "Assign", "Print"]

    def test_source_locals_exclude_temps_and_params(self):
        program = parse_program(
            "class Main { void main() { } int m(int p) { int a; int b = p + 1 + 2; return b; } }"
        )
        method = lower_program(program).method("Main.m")
        assert set(method.source_locals) == {"a", "b"}
        assert "p" in method.local_types
        assert "this" in method.local_types


class TestControlFlow:
    def test_if_shape(self):
        method = lower_main("int x = 1; if (x < 2) { x = 3; } print(x);")
        if_instr = next(i for i in method.instructions if isinstance(i, If))
        goto = next(i for i in method.instructions if isinstance(i, Goto))
        # branch target is the then-block, goto jumps over it
        then_target = method.instructions[if_instr.target]
        assert isinstance(then_target, Assign) and then_target.rvalue == Const(3)
        assert isinstance(method.instructions[goto.target], Print)

    def test_if_else_shape(self):
        method = lower_main(
            "int x = 1; if (x < 2) { x = 3; } else { x = 4; } print(x);"
        )
        if_instr = next(i for i in method.instructions if isinstance(i, If))
        # fall-through (else) comes right after the If
        else_instr = method.instructions[if_instr.index + 1]
        assert isinstance(else_instr, Assign) and else_instr.rvalue == Const(4)

    def test_while_shape(self):
        method = lower_main("int x = 0; while (x < 3) { x = x + 1; } print(x);")
        if_instr = next(i for i in method.instructions if isinstance(i, If))
        gotos = [i for i in method.instructions if isinstance(i, Goto)]
        # loop-back goto targets the condition evaluation (head)
        assert any(g.target <= if_instr.index for g in gotos)

    def test_branch_condition_is_flat(self):
        method = lower_main("int x = 1; if (x + 1 < 2 * 3) { x = 0; }")
        if_instr = next(i for i in method.instructions if isinstance(i, If))
        assert isinstance(if_instr.cond, BinOp)
        assert isinstance(if_instr.cond.left, LocalRef)

    def test_if_at_method_end_gets_return_target(self):
        method = lower_main("int x = 1; if (x < 2) { x = 3; }")
        # all branch targets must be valid indices
        for instr in method.instructions:
            if isinstance(instr, (If, Goto)):
                assert 0 <= instr.target < len(method.instructions)
        assert isinstance(method.instructions[-1], Return)


class TestCallsAndFields:
    EXTRA = "int foo(int p) { return p; }"

    def test_call_lowering(self):
        method = lower_main("int y = foo(1);", self.EXTRA)
        invoke = next(i for i in method.instructions if isinstance(i, Invoke))
        assert invoke.result == "y"
        assert invoke.receiver == LocalRef("this")
        assert invoke.method_name == "foo"
        assert invoke.static_type == "Main"
        assert invoke.args == (Const(1),)

    def test_call_in_expression_gets_temp(self):
        method = lower_main("int y = foo(1) + 2;", self.EXTRA)
        invoke = next(i for i in method.instructions if isinstance(i, Invoke))
        assert invoke.result.startswith("$t")

    def test_call_statement_without_result(self):
        method = lower_main("foo(1);", self.EXTRA)
        invoke = next(i for i in method.instructions if isinstance(i, Invoke))
        assert invoke.result is None

    def test_field_store_and_load(self):
        program = parse_program(
            """
            class A { int f;
                void set() { this.f = 1; }
                int get() { return this.f; }
            }
            class Main { void main() { } }
            """
        )
        ir = lower_program(program)
        store = ir.method("A.set").instructions[0]
        assert isinstance(store, FieldStore)
        assert store.field_class == "A"
        load = ir.method("A.get").instructions[0]
        assert isinstance(load.rvalue, FieldLoad)

    def test_inherited_field_resolves_to_declaring_class(self):
        program = parse_program(
            """
            class A { int f; }
            class B extends A { void set() { this.f = 1; } }
            class Main { void main() { } }
            """
        )
        store = lower_program(program).method("B.set").instructions[0]
        assert store.field_class == "A"

    def test_new_object(self):
        method = lower_main("Main m = new Main();")
        assert method.instructions[0].rvalue == NewObject("Main")

    def test_receiver_static_type(self):
        program = parse_program(
            """
            class A { int m() { return 1; } }
            class Main { void main() { A a = new A(); int x = a.m(); } }
            """
        )
        method = lower_program(program).method("Main.main")
        invoke = next(i for i in method.instructions if isinstance(i, Invoke))
        assert invoke.static_type == "A"


class TestAnnotations:
    def test_statement_annotation_attached(self):
        method = lower_main("int x = 0; #ifdef (F) x = 1; #endif")
        annotated = method.instructions[1]
        assert annotated.annotation == Var("F")

    def test_annotation_propagates_into_compound(self):
        method = lower_main(
            "int x = 0; #ifdef (F) if (x < 1) { x = 2; } #endif print(x);"
        )
        if_instr = next(i for i in method.instructions if isinstance(i, If))
        assert if_instr.annotation == Var("F")
        then_assign = method.instructions[if_instr.target]
        assert then_assign.annotation == Var("F")

    def test_temps_inherit_annotation(self):
        method = lower_main("int x = 0; #ifdef (F) x = x + 1 * x; #endif")
        for instr in method.instructions[1:-1]:
            assert instr.annotation == Var("F")

    def test_member_annotation_conjoined(self):
        program = parse_program(
            """
            class Main {
                void main() { }
                #ifdef (M)
                int m() {
                    int a = 0;
                    #ifdef (N) a = 1; #endif
                    return a;
                }
                #endif
            }
            """
        )
        method = lower_program(program).method("Main.m")
        assert method.annotation == Var("M")
        assert method.instructions[0].annotation == Var("M")
        assert method.instructions[1].annotation == And((Var("M"), Var("N")))

    def test_trailing_return_after_annotated_return(self):
        method = lower_main("int x = 0; #ifdef (F) return x; #endif")
        assert isinstance(method.instructions[-1], Return)
        assert method.instructions[-1].annotation is None
        assert method.instructions[-2].annotation == Var("F")


class TestErrors:
    def test_undeclared_local_use(self):
        with pytest.raises(LoweringError):
            lower_main("int x = y;")

    def test_undeclared_assignment_target(self):
        with pytest.raises(LoweringError):
            lower_main("x = 1;")

    def test_duplicate_local(self):
        with pytest.raises(LoweringError):
            lower_main("int x = 1; int x = 2;")

    def test_duplicate_param(self):
        with pytest.raises(LoweringError):
            lower_program(
                parse_program("class Main { void main() {} int m(int p, int p) { return p; } }")
            )

    def test_unknown_method(self):
        with pytest.raises(LoweringError):
            lower_main("int x = nope();")

    def test_unknown_field(self):
        with pytest.raises(LoweringError):
            lower_main("this.nope = 1;")

    def test_unknown_class(self):
        with pytest.raises(LoweringError):
            lower_main("int x = 0; Foo f = new Foo();")

    def test_call_on_primitive(self):
        with pytest.raises(LoweringError):
            lower_main("int x = 1; int y = x.m();")

    def test_null_dereference(self):
        with pytest.raises(LoweringError):
            lower_main("int x = null.f;")

    def test_duplicate_method(self):
        with pytest.raises(LoweringError):
            lower_program(
                parse_program(
                    "class Main { void main() {} int m() { return 1; } int m() { return 2; } }"
                )
            )

    def test_intrinsic_with_args(self):
        with pytest.raises(LoweringError):
            lower_main("int x = secret(1);")
