"""Tests for the CHA call graph."""

import pytest

from repro.ir import ICFG, Invoke, IRError, build_call_graph, lower_program
from repro.minijava import parse_program

HIERARCHY = """
class List { int add(int x) { return x; } }
class ArrayList extends List { int add(int x) { return x + 1; } }
class LinkedList extends List { int add(int x) { return x + 2; } }
class Main {
    void main() {
        List l = new ArrayList();
        int r = l.add(1);
        print(r);
    }
}
"""


def build(source):
    program = lower_program(parse_program(source))
    return program, build_call_graph(program, (program.method("Main.main"),))


class TestCHA:
    def test_virtual_call_resolves_to_all_subtypes(self):
        program, cg = build(HIERARCHY)
        call = next(iter(cg.call_sites()))
        targets = {m.qualified_name for m in cg.callees(call)}
        # Feature-insensitive CHA: all three implementations (the paper's
        # ArrayList/LinkedList example, Section 5).
        assert targets == {"List.add", "ArrayList.add", "LinkedList.add"}

    def test_reachable_methods(self):
        program, cg = build(HIERARCHY)
        names = {m.qualified_name for m in cg.reachable_methods}
        assert names == {"Main.main", "List.add", "ArrayList.add", "LinkedList.add"}

    def test_callers(self):
        program, cg = build(HIERARCHY)
        target = program.method("LinkedList.add")
        callers = cg.callers(target)
        assert len(callers) == 1
        assert isinstance(callers[0], Invoke)

    def test_static_type_narrows_dispatch(self):
        source = HIERARCHY.replace("List l = new ArrayList();", "ArrayList l = new ArrayList();")
        program, cg = build(source)
        call = next(iter(cg.call_sites()))
        targets = {m.qualified_name for m in cg.callees(call)}
        # static type ArrayList: only ArrayList.add (it has no subclasses)
        assert targets == {"ArrayList.add"}

    def test_inherited_method_resolution(self):
        source = """
        class Base { int m() { return 1; } }
        class Sub extends Base { }
        class Main { void main() { Sub s = new Sub(); int x = s.m(); } }
        """
        program, cg = build(source)
        call = next(iter(cg.call_sites()))
        targets = {m.qualified_name for m in cg.callees(call)}
        assert targets == {"Base.m"}

    def test_unreachable_methods_excluded(self):
        source = """
        class Main {
            void main() { int x = used(); }
            int used() { return 1; }
            int dead() { return 2; }
        }
        """
        program, cg = build(source)
        names = {m.qualified_name for m in cg.reachable_methods}
        assert "Main.dead" not in names

    def test_transitive_reachability(self):
        source = """
        class Main {
            void main() { int x = a(); }
            int a() { return b(); }
            int b() { return 1; }
        }
        """
        program, cg = build(source)
        names = {m.qualified_name for m in cg.reachable_methods}
        assert names == {"Main.main", "Main.a", "Main.b"}

    def test_recursion_handled(self):
        source = """
        class Main {
            void main() { int x = fib(5); }
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        }
        """
        program, cg = build(source)
        assert {m.qualified_name for m in cg.reachable_methods} == {
            "Main.main",
            "Main.fib",
        }

    def test_edge_count(self):
        program, cg = build(HIERARCHY)
        assert cg.edge_count == 3

    def test_deterministic_target_order(self):
        program, cg = build(HIERARCHY)
        call = next(iter(cg.call_sites()))
        names = [m.qualified_name for m in cg.callees(call)]
        assert names == sorted(names)
