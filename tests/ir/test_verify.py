"""Tests for the IR verifier — and verification of everything we build."""

import pytest

from repro.constraints.formula import Var
from repro.ir import Assign, Const, Goto, LocalRef, Return, lower_program
from repro.ir.program import IRMethod
from repro.ir.verify import IRVerificationError, verify_method, verify_program
from repro.minijava import parse_program
from repro.minijava.ast import INT, Type


def make_method(instructions, local_types=None, params=()):
    method = IRMethod(
        class_name="T",
        name="m",
        params=tuple(params),
        return_type=INT,
        instructions=instructions,
        local_types=dict(local_types or {}),
    )
    method.local_types.setdefault("this", Type("T"))
    return method.finalize()


class TestVerifierRejects:
    def test_missing_trailing_return(self):
        method = make_method([Assign(target="x", rvalue=Const(1))], {"x": INT})
        # finalize adds a return; sabotage it
        method.instructions.pop()
        with pytest.raises(IRVerificationError, match="not a return"):
            verify_method(method)

    def test_annotated_trailing_return(self):
        method = make_method([Return(None)], {})
        method.instructions[-1].annotation = Var("F")
        with pytest.raises(IRVerificationError, match="unannotated"):
            verify_method(method)

    def test_branch_out_of_range(self):
        method = make_method([Goto(target=99), Return(None)], {})
        with pytest.raises(IRVerificationError, match="out of range"):
            verify_method(method)

    def test_self_branch(self):
        method = make_method([Goto(target=0), Return(None)], {})
        with pytest.raises(IRVerificationError, match="self-targeting"):
            verify_method(method)

    def test_undeclared_local(self):
        method = make_method(
            [Assign(target="x", rvalue=LocalRef("ghost")), Return(None)],
            {"x": INT},
        )
        with pytest.raises(IRVerificationError, match="ghost"):
            verify_method(method)

    def test_bad_backreference(self):
        method = make_method([Return(None)], {})
        method.instructions[0].index = 5
        with pytest.raises(IRVerificationError, match="index"):
            verify_method(method)

    def test_unresolvable_call(self):
        program = lower_program(
            parse_program("class Main { void main() { int x = 1; } }")
        )
        main = program.method("Main.main")
        from repro.ir import Invoke

        bogus = Invoke(
            result=None,
            receiver=LocalRef("this"),
            method_name="ghost",
            args=(),
            static_type="Main",
        )
        bogus.method = main
        bogus.index = 0
        main.instructions.insert(0, bogus)
        main.finalize()
        with pytest.raises(IRVerificationError, match="unresolvable method"):
            verify_program(program)


class TestEverythingWeBuildVerifies:
    def test_examples_verify(self):
        from repro.spl import device_spl, figure1, gpl_mini

        for builder in (figure1, device_spl, gpl_mini):
            product_line = builder()
            verify_program(product_line.ir)

    def test_benchmark_subjects_verify(self):
        from repro.spl.benchmarks import paper_subjects

        for _, builder in paper_subjects():
            verify_program(builder().ir)

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_subjects_verify(self, seed):
        from repro.spl.generator import SubjectSpec, generate_subject

        spec = SubjectSpec(
            name=f"verify-{seed}",
            seed=seed,
            classes=5,
            entry_fanout=6,
            reachable_features=("A", "B", "C"),
        )
        verify_program(generate_subject(spec).ir)

    def test_all_products_of_figure1_verify(self):
        from repro.minijava import derive_product
        from repro.spl import figure1

        product_line = figure1()
        for config in product_line.valid_configurations():
            verify_program(
                lower_program(derive_product(product_line.ast, config))
            )
