"""Tests for content digests of lowered methods (repro.ir.digest).

The digests are the invalidation keys of incremental re-analysis, so
the properties that matter are *stability* (identical content → same
digest across independent parses), *locality* (an edit changes exactly
the edited method's local digest, and transitively only its callers),
and *SCC grouping* (mutual recursion shares one fate — editing either
member invalidates both).
"""

from repro.ir import ICFG, lower_program
from repro.ir.digest import (
    method_local_digest,
    transitive_method_digests,
)
from repro.minijava import parse_program
from repro.spl.edits import dirty_closure

SOURCE = """
class Util {
    int helper(int x) { return x + 1; }
    int wrapper(int x) { int y = this.helper(x); return y; }
    int even(int n) { if (n < 1) { return 1; } int r = this.odd(n - 1); return r; }
    int odd(int n) { if (n < 1) { return 0; } int r = this.even(n - 1); return r; }
}
class Main {
    void main() {
        Util u = new Util();
        int a = u.wrapper(1);
        int b = u.even(4);
        print(a + b);
    }
}
"""

#: Same program with ``Util.helper`` edited (constant changed).
EDITED = SOURCE.replace("return x + 1;", "return x + 2;")

#: Same program, shifted down by blank lines and reindented commentary —
#: content-identical at the IR level.
SHIFTED = "\n\n\n" + SOURCE


def _icfg(source):
    return ICFG.for_entry(lower_program(parse_program(source)), "Main.main")


def _digests(source):
    icfg = _icfg(source)
    transitive = transitive_method_digests(icfg.call_graph)
    return {m.qualified_name: d for m, d in transitive.items()}


def _local_digests(source):
    icfg = _icfg(source)
    return {
        m.qualified_name: method_local_digest(m)
        for m in icfg.call_graph.reachable_methods
    }


class TestStability:
    def test_deterministic_across_parses(self):
        assert _digests(SOURCE) == _digests(SOURCE)
        assert _local_digests(SOURCE) == _local_digests(SOURCE)

    def test_line_shifts_do_not_invalidate(self):
        """Digests hash content, not positions: moving every method down
        three lines must not flip a single digest."""
        assert _digests(SHIFTED) == _digests(SOURCE)

    def test_distinct_methods_distinct_digests(self):
        locals_ = _local_digests(SOURCE)
        assert len(set(locals_.values())) == len(locals_)


class TestLocality:
    def test_edit_changes_exactly_the_dirty_closure(self):
        before, after = _digests(SOURCE), _digests(EDITED)
        changed = {name for name in before if before[name] != after[name]}
        # helper's own digest changes; wrapper and main call into it.
        assert changed == {"Util.helper", "Util.wrapper", "Main.main"}

    def test_local_digest_changes_only_for_edited_method(self):
        before, after = _local_digests(SOURCE), _local_digests(EDITED)
        changed = {name for name in before if before[name] != after[name]}
        assert changed == {"Util.helper"}

    def test_transitive_change_set_matches_dirty_closure(self):
        """The set of methods whose transitive digest an edit flips is
        exactly ``dirty_closure`` — the invariant warm counters rely on
        (``summaries_invalidated == len(dirty_closure)``)."""
        icfg = _icfg(SOURCE)
        graph = icfg.call_graph
        before, after = _digests(SOURCE), _digests(EDITED)
        target = next(
            m
            for m in graph.reachable_methods
            if m.qualified_name == "Util.helper"
        )
        expected = {m.qualified_name for m in dirty_closure(graph, target)}
        changed = {name for name in before if before[name] != after[name]}
        assert changed == expected


class TestSCCGrouping:
    def test_mutual_recursion_shares_fate(self):
        """even/odd form one SCC: editing either flips both transitive
        digests (callers through the cycle can observe either body)."""
        edited_odd = SOURCE.replace("return 0;", "return 7;")
        before, after = _digests(SOURCE), _digests(edited_odd)
        changed = {name for name in before if before[name] != after[name]}
        assert {"Util.even", "Util.odd"} <= changed
        # wrapper/helper sit outside the cycle and stay clean.
        assert "Util.wrapper" not in changed
        assert "Util.helper" not in changed

    def test_scc_members_keep_distinct_digests(self):
        """Shared fate, not shared identity: the members' digests still
        differ (their local bodies differ)."""
        digests = _digests(SOURCE)
        assert digests["Util.even"] != digests["Util.odd"]
