"""Tests for the ProductLine container and its Table-1 metrics."""

import pytest

from repro.spl import ProductLine, device_spl, figure1


class TestPipelineCaching:
    def test_ast_parsed_once(self):
        product_line = figure1()
        assert product_line.ast is product_line.ast

    def test_ir_and_icfg_cached(self):
        product_line = figure1()
        assert product_line.ir is product_line.ir
        assert product_line.icfg is product_line.icfg

    def test_fresh_icfg_is_new(self):
        product_line = figure1()
        assert product_line.fresh_icfg() is not product_line.icfg


class TestMetrics:
    def test_kloc(self):
        product_line = figure1()
        expected_lines = len(
            [l for l in product_line.source.splitlines() if l.strip()]
        )
        assert product_line.kloc == pytest.approx(expected_lines / 1000)

    def test_features(self):
        product_line = device_spl()
        assert product_line.features_total == 6
        assert set(product_line.features_reachable) == {
            "Buffering",
            "Checksum",
            "Secure",
            "Encryption",
        }
        assert product_line.configurations_reachable == 16

    def test_annotated_features(self):
        product_line = figure1()
        assert product_line.features_annotated == {"F", "G", "H"}

    def test_valid_configuration_count(self):
        product_line = device_spl()
        # Encryption -> Secure removes the (Encryption & !Secure) quarter.
        assert product_line.count_valid_configurations() == 12

    def test_valid_configurations_enumerated(self):
        product_line = device_spl()
        configs = list(product_line.valid_configurations())
        assert len(configs) == 12
        assert all(isinstance(c, frozenset) for c in configs)
        for config in configs:
            assert not ("Encryption" in config and "Secure" not in config)

    def test_figure1_all_configs_valid(self):
        product_line = figure1()
        assert product_line.count_valid_configurations() == 8
        assert len(list(product_line.valid_configurations())) == 8

    def test_valid_configurations_deterministic(self):
        product_line = device_spl()
        assert list(product_line.valid_configurations()) == list(
            product_line.valid_configurations()
        )
