"""Tests for the synthetic SPL subject generator."""

import pytest

from repro.ir import ICFG
from repro.minijava import parse_program
from repro.spl.benchmarks import paper_subjects
from repro.spl.generator import SubjectSpec, generate_subject


def small_spec(seed=1, **overrides):
    defaults = dict(
        name="gen-test",
        seed=seed,
        classes=5,
        methods_per_class=(2, 3),
        statements_per_method=(4, 8),
        annotation_density=0.3,
        entry_fanout=5,
        reachable_features=("A", "B", "C"),
        dead_features=("DX",),
    )
    defaults.update(overrides)
    return SubjectSpec(**defaults)


class TestGenerator:
    def test_deterministic(self):
        first = generate_subject(small_spec(seed=3))
        second = generate_subject(small_spec(seed=3))
        assert first.source == second.source

    def test_different_seeds_differ(self):
        assert (
            generate_subject(small_spec(seed=1)).source
            != generate_subject(small_spec(seed=2)).source
        )

    def test_parses_and_lowers(self):
        product_line = generate_subject(small_spec())
        assert product_line.icfg.instruction_count() > 0

    def test_reachable_features_all_used(self):
        product_line = generate_subject(small_spec())
        assert set(product_line.features_reachable) == {"A", "B", "C"}

    def test_dead_features_not_reachable(self):
        product_line = generate_subject(small_spec())
        assert "DX" not in product_line.features_reachable
        # ... but they do occur in the (dead) source code.
        assert "DX" in product_line.features_annotated

    def test_entry_exists(self):
        product_line = generate_subject(small_spec())
        assert product_line.ir.method("Main.main") is not None

    def test_every_valid_product_lowers(self):
        """Derived products must compile (decls are never annotated)."""
        from repro.ir import lower_program
        from repro.minijava import derive_product

        product_line = generate_subject(small_spec(seed=9))
        count = 0
        for config in product_line.valid_configurations():
            product = derive_product(product_line.ast, config)
            program = lower_program(product)
            ICFG.for_entry(program)
            count += 1
        assert count == 8  # 3 free features

    def test_feature_model_default_unconstrained(self):
        product_line = generate_subject(small_spec())
        assert product_line.count_valid_configurations() == 8

    def test_scaling_parameters(self):
        small = generate_subject(small_spec(classes=3, entry_fanout=3))
        big = generate_subject(
            small_spec(classes=12, methods_per_class=(4, 6), entry_fanout=10)
        )
        assert big.kloc > small.kloc


class TestPaperSubjects:
    @pytest.mark.parametrize("name,builder", paper_subjects())
    def test_subject_builds_and_lowers(self, name, builder):
        product_line = builder()
        assert product_line.icfg.instruction_count() > 0

    def test_table1_shape_preserved(self):
        subjects = {name: builder() for name, builder in paper_subjects()}
        reach = {
            name: len(pl.features_reachable) for name, pl in subjects.items()
        }
        # Shape of the paper's Table 1: BerkeleyDB >> GPL > MM08 > Lampiro
        assert reach["BerkeleyDB-like"] > reach["GPL-like"]
        assert reach["GPL-like"] > reach["MM08-like"]
        assert reach["MM08-like"] > reach["Lampiro-like"]
        assert reach["Lampiro-like"] == 2

    def test_lampiro_like_has_4_valid_configs(self):
        from repro.spl.benchmarks import lampiro_like

        assert lampiro_like().count_valid_configurations() == 4

    def test_berkeleydb_like_is_astronomical(self):
        from repro.spl.benchmarks import berkeleydb_like

        product_line = berkeleydb_like()
        assert product_line.count_valid_configurations() > 10**8

    def test_constrained_models_prune(self):
        from repro.spl.benchmarks import gpl_like, mm08_like

        gpl = gpl_like()
        assert gpl.count_valid_configurations() < gpl.configurations_reachable
        mm08 = mm08_like()
        assert mm08.count_valid_configurations() < mm08.configurations_reachable
