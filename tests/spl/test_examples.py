"""Tests for the hand-written example product lines."""

import pytest

from repro.analyses import LocalFact, TaintAnalysis, UninitializedVariablesAnalysis
from repro.core import SPLLift
from repro.spl import device_spl, figure1, figure1_with_model


class TestFigure1:
    def test_metrics(self):
        product_line = figure1()
        assert product_line.features_reachable == ("F", "G", "H")
        assert product_line.configurations_reachable == 8

    def test_with_model_restricts(self):
        product_line = figure1_with_model()
        # F <-> G halves the space: 4 valid configurations.
        assert product_line.count_valid_configurations() == 4


class TestDeviceSPL:
    def test_builds(self):
        product_line = device_spl()
        assert {m.qualified_name for m in product_line.icfg.reachable_methods} == {
            "Main.main",
            "Device.send",
            "Device.flush",
            "SecureDevice.send",
        }

    def test_uninit_bug_requires_no_buffering(self):
        product_line = device_spl()
        analysis = UninitializedVariablesAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        flush = product_line.ir.method("Device.flush")
        return_stmt = flush.exit_points[0]
        constraint = results.constraint_for(return_stmt, LocalFact("pending"))
        assert not constraint.is_false
        # The bug happens exactly when Buffering is off (within valid products).
        assert constraint.entails(~results.system.var("Buffering"))
        assert not constraint.satisfied_by(
            {"DeviceSPL", "Transport", "Buffering"}
        )

    def test_leak_impossible_with_encryption(self):
        product_line = device_spl()
        analysis = TaintAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        (stmt, fact) = TaintAnalysis.sink_queries(analysis.icfg)[0]
        constraint = results.constraint_for(stmt, fact)
        assert constraint.entails(~results.system.var("Encryption"))
