"""Integration tests on the hand-written miniature Graph Product Line."""

import pytest

from repro.analyses import (
    NullnessAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines import solve_a2
from repro.core import SPLLift, compute_emergent_interface
from repro.interp import Interpreter
from repro.spl.gpl_mini import gpl_mini


@pytest.fixture(scope="module")
def product_line():
    return gpl_mini()


class TestStructure:
    def test_feature_model(self, product_line):
        # xor {BFS DFS} forces exactly one strategy; Cycle needs DFS,
        # Connected needs BFS, so they are mutually exclusive.
        assert product_line.count_valid_configurations() == 8
        for config in product_line.valid_configurations():
            assert ("BFS" in config) != ("DFS" in config)
            assert not ("Cycle" in config and "Connected" in config)

    def test_all_methods_reachable(self, product_line):
        names = {m.qualified_name for m in product_line.icfg.reachable_methods}
        assert "Graph.bfs" in names and "Graph.dfs" in names

    def test_reachable_features(self, product_line):
        assert set(product_line.features_reachable) == {
            "BFS",
            "DFS",
            "Weighted",
            "Connected",
            "Cycle",
        }


class TestLiftedAnalyses:
    def test_reachability_of_strategies(self, product_line):
        """bfs body is reachable iff BFS ∨ Connected... — actually the
        model forces Connected → BFS, so the constraint simplifies."""
        analysis = TaintAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        system = results.system
        bfs = product_line.ir.method("Graph.bfs")
        constraint = results.reachability_of(bfs.start_point)
        # Within valid products, bfs runs exactly when BFS is selected.
        assert constraint.entails(system.var("BFS"))
        dfs = product_line.ir.method("Graph.dfs")
        dfs_constraint = results.reachability_of(dfs.start_point)
        assert dfs_constraint.entails(system.var("DFS"))

    def test_search_result_definition_constraints(self, product_line):
        """`order` at search's exit may come from bfs (iff BFS), dfs
        (iff DFS) or the initial 0 — definitions carry the constraints."""
        analysis = ReachingDefinitionsAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        search = product_line.ir.method("Graph.search")
        exit_stmt = search.exit_points[-1]
        system = results.system
        constraints = {
            str(fact): constraint
            for fact, constraint in results.results_at(exit_stmt).items()
            if fact.name == "order"
        }
        assert constraints  # some definitions reach
        # The definition produced by the BFS call requires BFS, etc.
        bfs_defs = [
            c for label, c in constraints.items() if "search:1" in label
        ]
        for constraint in bfs_defs:
            assert constraint.entails(system.var("BFS"))

    def test_total_weight_uninitialized_edge_read(self, product_line):
        """totalWeight dereferences `current` (may be null when no edges)
        under Weighted — nullness must constrain the finding to Weighted."""
        analysis = NullnessAnalysis(product_line.icfg)
        results = SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()
        system = results.system
        total_weight = product_line.ir.method("Graph.totalWeight")
        hits = []
        for stmt, fact in analysis.dereference_queries():
            if stmt.method is total_weight:
                constraint = results.finding_constraint(stmt, fact)
                if not constraint.is_false:
                    hits.append(constraint)
        assert hits
        for constraint in hits:
            assert constraint.entails(system.var("Weighted"))

    def test_rq1_crosscheck_on_gpl_mini(self, product_line):
        from tests.test_rq1_crosscheck import crosscheck

        for analysis_class in (TaintAnalysis, UninitializedVariablesAnalysis):
            checked = crosscheck(product_line, analysis_class)
            assert checked == 8  # only the valid configurations


class TestExecutions:
    def test_all_valid_products_execute(self, product_line):
        for config in product_line.valid_configurations():
            trace = Interpreter(
                product_line.ir, configuration=config, fuel=50_000
            ).run()
            assert trace.completed, (sorted(config), trace.stop_reason)
            assert len(trace.prints) == 4

    def test_weight_printed_only_when_weighted(self, product_line):
        for config in product_line.valid_configurations():
            trace = Interpreter(
                product_line.ir, configuration=config, fuel=50_000
            ).run()
            weight = trace.printed_data()[3]
            if "Weighted" not in config:
                assert weight == 0

    def test_search_reaches_nodes_only_with_strategy(self, product_line):
        for config in product_line.valid_configurations():
            trace = Interpreter(
                product_line.ir, configuration=config, fuel=50_000
            ).run()
            reached = trace.printed_data()[0]
            if "BFS" not in config and "DFS" not in config:
                assert reached == 0  # cannot happen: xor forces one
            else:
                assert reached >= 1


class TestEmergentInterface:
    def test_weighted_interface(self, product_line):
        interface = compute_emergent_interface(
            product_line.icfg,
            "Weighted",
            feature_model=product_line.feature_model,
        )
        # Weighted code provides values consumed outside (edge costs).
        assert interface.provides
