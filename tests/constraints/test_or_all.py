"""n-ary ``or_all`` is equivalent to the pairwise ``or_`` fold.

Phase II of the IDE solver batches all contributions to a value cell into
one ``or_all`` call (ROADMAP "batch constraint joins"); these tests pin
the algebraic contract for both constraint backends.
"""

import pytest
from hypothesis import given, strategies as st

from repro.constraints import BddConstraintSystem, DnfConstraintSystem

VARS = ("F", "G", "H", "I")


@pytest.fixture(params=(BddConstraintSystem, DnfConstraintSystem))
def system(request):
    return request.param()


def _cube(system, literals):
    """A conjunction of literals, e.g. ((\"F\", True), (\"G\", False))."""
    constraint = system.true
    for name, positive in literals:
        var = system.var(name)
        constraint = constraint & (var if positive else ~var)
    return constraint


def _pairwise(system, constraints):
    result = system.false
    for constraint in constraints:
        result = system.or_(result, constraint)
    return result


def _models(constraint):
    """Truth table over VARS — the backend-independent semantics."""
    return frozenset(
        frozenset(config)
        for config in _powerset(VARS)
        if constraint.satisfied_by(frozenset(config))
    )


def _powerset(names):
    out = [()]
    for name in names:
        out += [prefix + (name,) for prefix in out]
    return out


literal = st.tuples(st.sampled_from(VARS), st.booleans())
cube_literals = st.lists(literal, max_size=4)
constraint_lists = st.lists(cube_literals, max_size=6)


class TestOrAllEquivalence:
    # A fresh system per generated input (hypothesis forbids mixing
    # @given with function-scoped fixtures), hence the class parameter.
    @pytest.mark.parametrize(
        "system_class", (BddConstraintSystem, DnfConstraintSystem)
    )
    @given(constraint_lists)
    def test_matches_pairwise_fold(self, system_class, cubes):
        system = system_class()
        constraints = [_cube(system, literals) for literals in cubes]
        batched = system.or_all(constraints)
        folded = _pairwise(system, constraints)
        assert _models(batched) == _models(folded)

    @given(constraint_lists)
    def test_bdd_canonical_equality(self, cubes):
        system = BddConstraintSystem()
        constraints = [_cube(system, literals) for literals in cubes]
        # BDDs are canonical: semantic equivalence IS object equality.
        assert system.or_all(constraints) == _pairwise(system, constraints)


class TestOrAllEdgeCases:
    def test_empty_is_false(self, system):
        assert system.or_all([]).is_false

    def test_singleton_identity(self, system):
        f = system.var("F")
        assert _models(system.or_all([f])) == _models(f)

    def test_true_short_circuits(self, system):
        assert system.or_all([system.var("F"), system.true]).is_true

    def test_false_operands_ignored(self, system):
        f = system.var("F")
        result = system.or_all([system.false, f, system.false])
        assert _models(result) == _models(f)

    def test_duplicates_collapse(self, system):
        f = system.var("F")
        assert _models(system.or_all([f, f, f])) == _models(f)

    def test_complementary_literals_give_true(self, system):
        f = system.var("F")
        assert system.or_all([f, ~f]).is_true


class TestJoinAllValues:
    def test_lifted_problem_routes_to_or_all(self):
        from repro.analyses import TaintAnalysis
        from repro.core.lifting import LiftedProblem
        from repro.spl import figure1

        product_line = figure1()
        system = BddConstraintSystem()
        problem = LiftedProblem(
            TaintAnalysis(product_line.icfg), system, system.true
        )
        f, g = system.var("F"), system.var("G")
        assert problem.join_all_values([f, g]) == (f | g)
        assert problem.join_all_values([]).is_false

    def test_default_is_pairwise_fold(self):
        from repro.ide.binary import BinaryIDEProblem
        from repro.analyses import TaintAnalysis
        from repro.spl import figure1

        problem = BinaryIDEProblem(TaintAnalysis(figure1().icfg))
        top = problem.top_value()
        values = [top, problem.bottom_value(), top]
        expected = top
        for value in values:
            expected = problem.join_values(expected, value)
        assert problem.join_all_values(values) == expected

    def test_solver_counts_batch_joins(self):
        from repro.analyses import TaintAnalysis
        from repro.core import SPLLift
        from repro.spl import figure1

        product_line = figure1()
        results = SPLLift(
            TaintAnalysis(product_line.icfg),
            feature_model=product_line.feature_model,
        ).solve()
        assert "value_batch_joins" in results.stats
        assert results.stats["value_batch_joins"] >= 0
