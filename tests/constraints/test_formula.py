"""Tests for the propositional formula AST and parser."""

import pytest

from repro.constraints.formula import (
    And,
    FalseConst,
    FormulaParseError,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
    parse_formula,
)


class TestParsing:
    def test_single_variable(self):
        assert parse_formula("F") == Var("F")

    def test_constants(self):
        assert parse_formula("true") == TrueConst()
        assert parse_formula("false") == FalseConst()

    def test_negation(self):
        assert parse_formula("!F") == Not(Var("F"))
        assert parse_formula("!!F") == Not(Not(Var("F")))

    def test_conjunction_flattens(self):
        assert parse_formula("A && B && C") == And((Var("A"), Var("B"), Var("C")))

    def test_disjunction(self):
        assert parse_formula("A || B") == Or((Var("A"), Var("B")))

    def test_single_char_operators(self):
        assert parse_formula("A & B") == And((Var("A"), Var("B")))
        assert parse_formula("A | B") == Or((Var("A"), Var("B")))

    def test_precedence_and_over_or(self):
        parsed = parse_formula("A || B && C")
        assert parsed == Or((Var("A"), And((Var("B"), Var("C")))))

    def test_parentheses(self):
        parsed = parse_formula("(A || B) && C")
        assert parsed == And((Or((Var("A"), Var("B"))), Var("C")))

    def test_implication_right_associative(self):
        parsed = parse_formula("A -> B -> C")
        assert parsed == Implies(Var("A"), Implies(Var("B"), Var("C")))

    def test_iff(self):
        assert parse_formula("A <-> B") == Iff(Var("A"), Var("B"))

    def test_implication_binds_looser_than_or(self):
        parsed = parse_formula("A || B -> C")
        assert parsed == Implies(Or((Var("A"), Var("B"))), Var("C"))

    def test_underscore_names(self):
        assert parse_formula("_f_1") == Var("_f_1")

    @pytest.mark.parametrize(
        "bad", ["", "&& A", "A &&", "(A", "A)", "A @ B", "! "]
    )
    def test_parse_errors(self, bad):
        with pytest.raises(FormulaParseError):
            parse_formula(bad)


class TestEvaluation:
    def test_evaluate(self):
        formula = parse_formula("(A -> B) && !C")
        assert formula.evaluate({"A": True, "B": True, "C": False})
        assert not formula.evaluate({"A": True, "B": False, "C": False})
        assert not formula.evaluate({"A": False, "B": False, "C": True})

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            parse_formula("A").evaluate({})

    def test_variables(self):
        assert parse_formula("A && (B || !C)").variables() == {"A", "B", "C"}
        assert parse_formula("true").variables() == frozenset()


class TestStrRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "F",
            "!F",
            "A && B",
            "A || B && C",
            "(A || B) && C",
            "A -> B",
            "A <-> B",
            "!(A && B)",
            "true",
            "false",
            "A && !B || C",
        ],
    )
    def test_str_reparses_to_same_formula(self, text):
        formula = parse_formula(text)
        assert parse_formula(str(formula)) == formula


class TestOperators:
    def test_dunder_connectives(self):
        a, b = Var("A"), Var("B")
        assert (a & b) == And((a, b))
        assert (a | b) == Or((a, b))
        assert (~a) == Not(a)

    def test_hashable(self):
        assert len({parse_formula("A && B"), parse_formula("A && B")}) == 1
