"""Tests for the BDD-backed constraint system."""

import pytest

from repro.constraints import BddConstraintSystem, parse_formula


@pytest.fixture
def system():
    return BddConstraintSystem()


class TestBasics:
    def test_true_false(self, system):
        assert system.true.is_true
        assert system.false.is_false
        assert not system.true.is_false
        assert not system.false.is_true

    def test_var(self, system):
        f = system.var("F")
        assert not f.is_true and not f.is_false
        assert str(f) == "F"

    def test_operators(self, system):
        f, g = system.var("F"), system.var("G")
        assert (f & ~f).is_false
        assert (f | ~f).is_true
        assert (f & g) == (g & f)

    def test_interning_same_function_same_handle(self, system):
        f, g = system.var("F"), system.var("G")
        assert (~(f & g)) is ((~f) | (~g))

    def test_parse(self, system):
        constraint = system.parse("!F && G")
        assert constraint == (~system.var("F")) & system.var("G")

    def test_from_formula(self, system):
        constraint = system.from_formula(parse_formula("F -> G"))
        assert constraint.satisfied_by({"G"})
        assert constraint.satisfied_by(set())
        assert not constraint.satisfied_by({"F"})

    def test_entails(self, system):
        f, g = system.var("F"), system.var("G")
        assert (f & g).entails(f)
        assert not f.entails(f & g)

    def test_satisfied_by_set_and_mapping(self, system):
        constraint = system.parse("F && !G")
        assert constraint.satisfied_by({"F"})
        assert constraint.satisfied_by({"F": True, "G": False})
        assert not constraint.satisfied_by({"F", "G"})

    def test_model_count(self, system):
        constraint = system.parse("F || G")
        assert constraint.model_count(["F", "G"]) == 3

    def test_models(self, system):
        constraint = system.parse("F && !G")
        models = list(constraint.models(["F", "G"]))
        assert models == [{"F": True, "G": False}]

    def test_and_all_or_all_short_circuit(self, system):
        f = system.var("F")
        assert system.and_all([f, ~f, system.var("G")]).is_false
        assert system.or_all([f, ~f]).is_true
        assert system.and_all([]).is_true
        assert system.or_all([]).is_false

    def test_foreign_constraint_rejected(self, system):
        other = BddConstraintSystem()
        with pytest.raises(TypeError):
            system.and_(system.true, other.true)

    def test_hash_equality(self, system):
        a = system.parse("F && G")
        b = system.var("F") & system.var("G")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_contains_expression(self, system):
        assert "F" in repr(system.var("F"))
