"""Cross-validation: the DNF and BDD constraint systems agree semantically."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.constraints import BddConstraintSystem, DnfConstraintSystem
from repro.constraints.formula import (
    And,
    FalseConst,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
)

VARS = ("p", "q", "r")


def formulas():
    base = st.one_of(
        st.sampled_from([TrueConst(), FalseConst()]),
        st.sampled_from(VARS).map(Var),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(And),
            st.tuples(children, children).map(Or),
            st.tuples(children, children).map(lambda t: Implies(*t)),
            st.tuples(children, children).map(lambda t: Iff(*t)),
        )

    return st.recursive(base, extend, max_leaves=8)


def assignments():
    for bits in itertools.product((False, True), repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@given(formulas())
@settings(max_examples=150, deadline=None)
def test_dnf_and_bdd_agree_pointwise(formula):
    bdd = BddConstraintSystem().from_formula(formula)
    dnf = DnfConstraintSystem().from_formula(formula)
    for assignment in assignments():
        expected = formula.evaluate(assignment)
        assert bdd.satisfied_by(assignment) == expected
        assert dnf.satisfied_by(assignment) == expected


@given(formulas())
@settings(max_examples=150, deadline=None)
def test_dnf_and_bdd_agree_on_falseness(formula):
    bdd = BddConstraintSystem().from_formula(formula)
    dnf = DnfConstraintSystem().from_formula(formula)
    assert bdd.is_false == dnf.is_false
    assert bdd.is_true == dnf.is_true


@given(formulas(), formulas())
@settings(max_examples=100, deadline=None)
def test_dnf_and_bdd_agree_on_entailment(f, g):
    bdd_system = BddConstraintSystem()
    dnf_system = DnfConstraintSystem()
    bdd_result = bdd_system.from_formula(f).entails(bdd_system.from_formula(g))
    dnf_result = dnf_system.from_formula(f).entails(dnf_system.from_formula(g))
    assert bdd_result == dnf_result
