"""Tests for the DNF-backed constraint system (the paper's rejected design)."""

import pytest

from repro.constraints import DnfConstraintSystem
from repro.constraints.dnf import _normalize


@pytest.fixture
def system():
    return DnfConstraintSystem()


class TestNormalization:
    def test_contradictory_cube_removed(self):
        cube = frozenset((("F", True), ("F", False)))
        assert _normalize([cube]) == frozenset()

    def test_subsumed_cube_removed(self):
        general = frozenset((("F", True),))
        specific = frozenset((("F", True), ("G", True)))
        assert _normalize([general, specific]) == frozenset([general])

    def test_unrelated_cubes_kept(self):
        a = frozenset((("F", True),))
        b = frozenset((("G", True),))
        assert _normalize([a, b]) == frozenset([a, b])


class TestAlgebra:
    def test_true_false(self, system):
        assert system.true.is_true
        assert system.false.is_false

    def test_is_false_exact(self, system):
        f = system.var("F")
        assert (f & ~f).is_false

    def test_is_true_via_complement(self, system):
        f = system.var("F")
        assert (f | ~f).is_true

    def test_operators(self, system):
        f, g = system.var("F"), system.var("G")
        conj = f & g
        assert conj.satisfied_by({"F", "G"})
        assert not conj.satisfied_by({"F"})
        disj = f | g
        assert disj.satisfied_by({"G"})
        assert not disj.satisfied_by(set())

    def test_negation_de_morgan(self, system):
        f, g = system.var("F"), system.var("G")
        lhs = ~(f & g)
        rhs = (~f) | (~g)
        # Syntactic equality on the normal form.
        assert lhs == rhs

    def test_entails(self, system):
        f, g = system.var("F"), system.var("G")
        assert (f & g).entails(f)
        assert not f.entails(g)

    def test_distribution(self, system):
        f, g, h = system.var("F"), system.var("G"), system.var("H")
        assert (f & (g | h)) == ((f & g) | (f & h))

    def test_absorption_via_subsumption(self, system):
        f, g = system.var("F"), system.var("G")
        assert (f | (f & g)) == f

    def test_parse(self, system):
        constraint = system.parse("(F -> G) && F")
        assert constraint.satisfied_by({"F", "G"})
        assert not constraint.satisfied_by({"F"})
        assert not constraint.satisfied_by(set())

    def test_iff_via_formula(self, system):
        constraint = system.parse("F <-> G")
        assert constraint.satisfied_by(set())
        assert constraint.satisfied_by({"F", "G"})
        assert not constraint.satisfied_by({"F"})

    def test_foreign_constraint_rejected(self, system):
        other = DnfConstraintSystem()
        with pytest.raises(TypeError):
            system.or_(system.true, other.false)

    def test_str_rendering(self, system):
        assert str(system.true) == "true"
        assert str(system.false) == "false"
        assert "F" in str(system.var("F"))
