"""Tests for the cross-process constraint codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.bddsystem import BddConstraintSystem
from repro.constraints.dnf import DnfConstraintSystem
from repro.constraints.serialize import (
    CONSTRAINT_CODEC_SCHEMA,
    ConstraintCodecError,
    decode_constraints,
    encode_constraints,
)

VARS = ("A", "B", "C", "D", "E")


def terms(max_depth: int = 4):
    base = st.sampled_from(VARS)

    def build(system, spec):
        kind = spec[0]
        if kind == "var":
            return system.var(spec[1])
        if kind == "not":
            return ~build(system, spec[1])
        left, right = build(system, spec[1]), build(system, spec[2])
        return (left & right) if kind == "and" else (left | right)

    spec = st.recursive(
        base.map(lambda name: ("var", name)),
        lambda children: st.one_of(
            children.map(lambda c: ("not", c)),
            st.tuples(children, children).map(lambda t: ("and", *t)),
            st.tuples(children, children).map(lambda t: ("or", *t)),
        ),
        max_leaves=10,
    )
    return spec, build


SPEC, BUILD = terms()


class TestBddCodec:
    def test_round_trip_same_system(self):
        system = BddConstraintSystem()
        a, b, c = system.var("A"), system.var("B"), system.var("C")
        batch = [a & ~b, (a | c) & b, system.true, system.false, a]
        decoded = decode_constraints(
            system, encode_constraints(system, batch)
        )
        assert decoded == batch

    def test_round_trip_fresh_system(self):
        """A receiver with no declared variables reconstructs the same
        functions (its render order may differ — the parallel solver
        pre-declares variables so it never does, see LiftedProblem)."""
        sender = BddConstraintSystem()
        a, b = sender.var("A"), sender.var("B")
        document = encode_constraints(sender, [a & ~b, a | b])
        receiver = BddConstraintSystem()
        decoded = decode_constraints(receiver, document)
        assert decoded[0] == receiver.var("A") & ~receiver.var("B")
        assert decoded[1] == receiver.var("A") | receiver.var("B")

    def test_round_trip_predeclared_receiver_renders_identically(self):
        """With the sender's declaration order replayed first (what the
        parallel solve guarantees), even the strings match."""
        sender = BddConstraintSystem()
        a, b = sender.var("A"), sender.var("B")
        batch = [a & ~b, a | b]
        document = encode_constraints(sender, batch)
        receiver = BddConstraintSystem()
        receiver.var("A"), receiver.var("B")
        decoded = decode_constraints(receiver, document)
        assert [str(c) for c in decoded] == [str(c) for c in batch]

    def test_cross_order_canonicalization(self):
        """Sender and receiver disagree on variable order; the decoded
        constraint is still semantically the sender's."""
        sender = BddConstraintSystem()
        constraint = sender.var("A") & ~sender.var("B") | sender.var("C")
        document = encode_constraints(sender, [constraint])

        receiver = BddConstraintSystem()
        receiver.var("C"), receiver.var("B"), receiver.var("A")
        (decoded,) = decode_constraints(receiver, document)
        expected = (
            receiver.var("A") & ~receiver.var("B") | receiver.var("C")
        )
        assert decoded == expected  # canonical in the receiver's order

    def test_batch_shares_node_table(self):
        """A constraint repeated across many roots costs one table entry
        set, and identical roots encode to identical refs."""
        system = BddConstraintSystem()
        constraint = system.var("A") & system.var("B")
        document = encode_constraints(system, [constraint] * 50)
        assert len(set(document["roots"])) == 1
        assert len(document["nodes"]) == 2  # one node per variable

    def test_terminals_only(self):
        system = BddConstraintSystem()
        document = encode_constraints(system, [system.true, system.false])
        assert document["nodes"] == []
        assert document["roots"] == [1, 0]
        assert decode_constraints(system, document) == [
            system.true,
            system.false,
        ]

    def test_schema_mismatch_rejected(self):
        system = BddConstraintSystem()
        with pytest.raises(ConstraintCodecError):
            decode_constraints(system, {"schema": "bogus/v9"})

    def test_unknown_codec_rejected(self):
        system = BddConstraintSystem()
        with pytest.raises(ConstraintCodecError):
            decode_constraints(
                system,
                {"schema": CONSTRAINT_CODEC_SCHEMA, "codec": "carrier-pigeon"},
            )

    def test_malformed_row_rejected(self):
        system = BddConstraintSystem()
        document = {
            "schema": CONSTRAINT_CODEC_SCHEMA,
            "codec": "bdd-nodes",
            "vars": ["A"],
            "nodes": [[0, 0]],  # missing the high ref
            "roots": [2],
        }
        with pytest.raises(ConstraintCodecError):
            decode_constraints(system, document)

    def test_dangling_root_rejected(self):
        system = BddConstraintSystem()
        document = {
            "schema": CONSTRAINT_CODEC_SCHEMA,
            "codec": "bdd-nodes",
            "vars": [],
            "nodes": [],
            "roots": [7],
        }
        with pytest.raises(ConstraintCodecError):
            decode_constraints(system, document)

    @given(specs=st.lists(SPEC, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_random_batches_round_trip(self, specs):
        sender = BddConstraintSystem()
        batch = [BUILD(sender, spec) for spec in specs]
        document = encode_constraints(sender, batch)
        receiver = BddConstraintSystem()
        decoded = decode_constraints(receiver, document)
        rebuilt = [BUILD(receiver, spec) for spec in specs]
        assert decoded == rebuilt


class TestFormulaFallback:
    def test_dnf_round_trip(self):
        system = DnfConstraintSystem()
        a, b = system.var("A"), system.var("B")
        batch = [a & ~b, a | b, system.true, system.false]
        document = encode_constraints(system, batch)
        assert document["codec"] == "formula"
        assert decode_constraints(system, document) == batch
