"""Tests for the ``spllift obs`` subcommands, the trace-file error
contract, and batch progress/event-log wiring."""

import json

import pytest

from repro.cli import main
from repro.obs.flight import FlightRecorder
from repro.spl.examples import FIGURE1_SOURCE


@pytest.fixture
def dump_file(tmp_path):
    recorder = FlightRecorder(capacity=16)
    recorder.note_job({"label": "fig1", "analysis": "taint"})
    recorder.span_begin("pool/task")
    recorder.record("pulse", "ide/phase1", pops=256)
    path = tmp_path / "dump.json"
    path.write_text(json.dumps(recorder.dump("timeout after 5s")))
    return str(path)


@pytest.fixture
def crash_manifest(tmp_path):
    path = tmp_path / "batch.json"
    path.write_text(json.dumps({
        "jobs": [
            {"source": FIGURE1_SOURCE, "analysis": "taint", "label": "fig1"},
            {
                "source": FIGURE1_SOURCE,
                "analysis": "uninit",
                "label": "fig1",
                "options": {"_test_crash_always": True},
            },
        ]
    }))
    return str(path)


def metrics_file(tmp_path, name, counters):
    path = tmp_path / name
    path.write_text(json.dumps({
        "schema": "spllift-metrics/v1",
        "metrics": {"counters": counters, "gauges": {}, "histograms": {}},
    }))
    return str(path)


class TestPostmortem:
    def test_renders_raw_dump(self, dump_file, capsys):
        rc = main(["obs", "postmortem", dump_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reason: timeout after 5s" in out
        assert "in-flight job: fig1" in out
        assert "pool/task" in out

    def test_renders_crash_report(self, crash_manifest, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main([
            "batch", crash_manifest, "--no-store", "--retries", "0",
            "--report", str(report),
        ])
        assert rc == 1  # the crashing job fails
        capsys.readouterr()
        rc = main(["obs", "postmortem", str(report)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worker crashed (exit code -9" in out
        assert "analysis=uninit" in out
        assert "open spans at death" in out

    def test_error_contract_on_bad_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "nope"}')
        rc = main(["obs", "postmortem", str(bogus)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")
        assert len(err.strip().splitlines()) == 1

    def test_error_contract_on_missing_file(self, tmp_path, capsys):
        rc = main(["obs", "postmortem", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")


class TestObsDiff:
    def test_ok_within_threshold(self, tmp_path, capsys):
        a = metrics_file(tmp_path, "a.json", {"ide.jumps": 100})
        b = metrics_file(tmp_path, "b.json", {"ide.jumps": 105})
        rc = main(["obs", "diff", a, b])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_drift_fails(self, tmp_path, capsys):
        a = metrics_file(tmp_path, "a.json", {"ide.jumps": 100})
        b = metrics_file(tmp_path, "b.json", {"ide.jumps": 200})
        rc = main(["obs", "diff", a, b])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DRIFT" in out

    def test_threshold_override_by_pattern(self, tmp_path, capsys):
        a = metrics_file(tmp_path, "a.json", {"ide.jumps": 100})
        b = metrics_file(tmp_path, "b.json", {"ide.jumps": 200})
        rc = main([
            "obs", "diff", a, b, "--threshold-for", "ide.*=2.0",
        ])
        assert rc == 0

    def test_error_contract(self, tmp_path, capsys):
        a = metrics_file(tmp_path, "a.json", {"ide.jumps": 1})
        rc = main(["obs", "diff", a, str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")


class TestObsTail:
    def test_renders_formatted_lines(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            '{"ts": 1.0, "level": "info", "event": "job.start", "pid": 7}\n'
            '{"ts": 2.0, "level": "error", "event": "job.failed", "pid": 7}\n'
        )
        rc = main(["obs", "tail", str(log)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job.start" in out
        assert "job.failed" in out
        assert "pid=7" in out

    def test_lines_limit(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text("".join(
            json.dumps({"ts": float(i), "event": f"e{i}"}) + "\n"
            for i in range(10)
        ))
        rc = main(["obs", "tail", str(log), "--lines", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "e9" in out and "e7" in out
        assert "e6" not in out

    def test_error_contract_on_missing_file(self, tmp_path, capsys):
        rc = main(["obs", "tail", str(tmp_path / "nope.jsonl")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")


class TestTraceErrorContract:
    def test_empty_trace_file(self, tmp_path, capsys):
        empty = tmp_path / "trace.json"
        empty.write_text("")
        rc = main(["trace", "summary", str(empty)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")
        assert len(err.strip().splitlines()) == 1  # no traceback

    def test_truncated_trace_file(self, tmp_path, capsys):
        torn = tmp_path / "trace.json"
        torn.write_text('[\n{"name": "solve", "ph": "B", "ts": 1,')
        rc = main(["trace", "summary", str(torn), "--folded"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("spllift: error:")


class TestBatchObservability:
    def test_progress_line_on_stderr(self, crash_manifest, tmp_path, capsys):
        manifest = tmp_path / "ok.json"
        manifest.write_text(json.dumps({
            "jobs": [
                {"source": FIGURE1_SOURCE, "analysis": "taint",
                 "label": "fig1"},
            ]
        }))
        rc = main(["batch", str(manifest), "--no-store", "--progress"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "batch" in err
        assert "wave" in err
        assert "jobs" in err

    def test_log_records_batch_lifecycle(self, tmp_path, capsys):
        from repro.obs.log import iter_log

        manifest = tmp_path / "ok.json"
        manifest.write_text(json.dumps({
            "jobs": [
                {"source": FIGURE1_SOURCE, "analysis": "taint",
                 "label": "fig1"},
            ]
        }))
        log = tmp_path / "events.jsonl"
        rc = main([
            "batch", str(manifest), "--no-store", "--log", str(log),
        ])
        assert rc == 0
        events = [r["event"] for r in iter_log(log)]
        assert events[0] == "batch.start"
        assert events[-1] == "batch.done"
        assert "job.start" in events
        assert "job.computed" in events
        run_ids = {r.get("run_id") for r in iter_log(log)}
        assert len(run_ids) == 1 and None not in run_ids
