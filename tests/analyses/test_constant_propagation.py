"""Tests for linear constant propagation (the native IDE client)."""

import pytest

from repro.analyses import BOTTOM, TOP, ConstantPropagation
from repro.analyses.constant_propagation import AffineEdge, AllBottomEdge, _linear_of
from repro.ide import IDESolver
from repro.interp import Interpreter
from repro.ir import BinOp, Const, LocalRef, Print, UnOp, lower_program
from repro.ir.icfg import ICFG
from repro.minijava import parse_program


def solve(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = ConstantPropagation(icfg)
    return icfg, IDESolver(problem).solve()


def constant_before_print(icfg, results):
    stmt = next(s for s in icfg.reachable_instructions() if isinstance(s, Print))
    return ConstantPropagation.constant_at(results, stmt, stmt.value.name)


class TestEdgeAlgebra:
    def test_affine_application(self):
        assert AffineEdge(2, 3).compute_target(5) == 13
        assert AffineEdge(0, 7).compute_target(BOTTOM) == 7
        assert AffineEdge(2, 3).compute_target(BOTTOM) is BOTTOM

    def test_composition(self):
        # v -> 2v+3 then v -> 5v+1 is v -> 10v+16
        composed = AffineEdge(2, 3).compose_with(AffineEdge(5, 1))
        assert composed.equal_to(AffineEdge(10, 16))

    def test_composition_with_constant_forgets(self):
        composed = AllBottomEdge().compose_with(AffineEdge(0, 9))
        assert composed.equal_to(AffineEdge(0, 9))

    def test_join_equal(self):
        assert AffineEdge(1, 2).join_with(AffineEdge(1, 2)).equal_to(AffineEdge(1, 2))

    def test_join_unequal_is_bottom(self):
        joined = AffineEdge(0, 1).join_with(AffineEdge(0, 2))
        assert isinstance(joined, AllBottomEdge)


class TestLinearDecomposition:
    def test_constant(self):
        assert _linear_of(Const(5)) == (None, 0, 5)

    def test_copy(self):
        assert _linear_of(LocalRef("y")) == ("y", 1, 0)

    def test_add_sub_constants(self):
        assert _linear_of(BinOp("+", LocalRef("y"), Const(3))) == ("y", 1, 3)
        assert _linear_of(BinOp("-", LocalRef("y"), Const(3))) == ("y", 1, -3)
        assert _linear_of(BinOp("+", Const(3), LocalRef("y"))) == ("y", 1, 3)

    def test_multiply(self):
        assert _linear_of(BinOp("*", LocalRef("y"), Const(4))) == ("y", 4, 0)
        assert _linear_of(BinOp("*", Const(4), LocalRef("y"))) == ("y", 4, 0)

    def test_negation(self):
        assert _linear_of(UnOp("-", LocalRef("y"))) == ("y", -1, 0)

    def test_two_variables_is_nonlinear(self):
        assert _linear_of(BinOp("+", LocalRef("y"), LocalRef("z"))) is None

    def test_constant_folding(self):
        assert _linear_of(BinOp("+", Const(2), Const(3))) == (None, 0, 5)
        assert _linear_of(BinOp("*", Const(2), Const(3))) == (None, 0, 6)


class TestIntraProcedural:
    def test_simple_constant(self):
        icfg, results = solve(
            "class Main { void main() { int x = 7; print(x); } }"
        )
        assert constant_before_print(icfg, results) == 7

    def test_linear_chain(self):
        icfg, results = solve(
            "class Main { void main() { int x = 7; int y = x * 2 + 1; print(y); } }"
        )
        assert constant_before_print(icfg, results) == 15

    def test_nondet_is_bottom(self):
        icfg, results = solve(
            "class Main { void main() { int x = nondet(); print(x); } }"
        )
        assert constant_before_print(icfg, results) is BOTTOM

    def test_branch_agreeing_values_stay_constant(self):
        icfg, results = solve(
            """
            class Main { void main() {
                int c = nondet();
                int x = 0;
                if (c < 1) { x = 5; } else { x = 5; }
                print(x);
            } }
            """
        )
        assert constant_before_print(icfg, results) == 5

    def test_branch_conflicting_values_are_bottom(self):
        icfg, results = solve(
            """
            class Main { void main() {
                int c = nondet();
                int x = 0;
                if (c < 1) { x = 5; } else { x = 6; }
                print(x);
            } }
            """
        )
        assert constant_before_print(icfg, results) is BOTTOM

    def test_loop_incremented_is_bottom(self):
        icfg, results = solve(
            """
            class Main { void main() {
                int i = 0;
                while (i < 3) { i = i + 1; }
                print(i);
            } }
            """
        )
        assert constant_before_print(icfg, results) is BOTTOM

    def test_untracked_local_is_top(self):
        icfg, results = solve(
            "class Main { void main() { int x = 1; print(x); } }"
        )
        stmt = next(s for s in icfg.reachable_instructions() if isinstance(s, Print))
        assert ConstantPropagation.constant_at(results, stmt, "nope") is TOP


class TestInterProcedural:
    def test_constant_through_call(self):
        """The classic LCP test: x = id(7) where id is linear."""
        icfg, results = solve(
            """
            class Main {
                void main() { int x = inc(7); print(x); }
                int inc(int n) { return n + 1; }
            }
            """
        )
        assert constant_before_print(icfg, results) == 8

    def test_context_sensitivity(self):
        """Two call sites with different constants: each result exact."""
        icfg, results = solve(
            """
            class Main {
                void main() {
                    int a = inc(10);
                    int b = inc(20);
                    print(a);
                    print(b);
                }
                int inc(int n) { return n + 1; }
            }
            """
        )
        prints = [
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        ]
        assert ConstantPropagation.constant_at(results, prints[0], "a") == 11
        assert ConstantPropagation.constant_at(results, prints[1], "b") == 21

    def test_formal_merges_to_bottom_inside_callee(self):
        """Inside the callee the formal joins both contexts to ⊥, yet the
        per-call-site results above stay precise — exactly the IDE
        context-sensitivity story."""
        icfg, results = solve(
            """
            class Main {
                void main() {
                    int a = inc(10);
                    int b = inc(20);
                    print(a);
                }
                int inc(int n) { return n + 1; }
            }
            """
        )
        inc = icfg.program.method("Main.inc")
        exit_stmt = inc.exit_points[0]
        assert ConstantPropagation.constant_at(results, exit_stmt, "n") is BOTTOM

    def test_constant_return(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int x = fortytwo(); print(x); }
                int fortytwo() { return 42; }
            }
            """
        )
        assert constant_before_print(icfg, results) == 42

    def test_linear_chain_through_two_calls(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int x = f(3); print(x); }
                int f(int n) { return g(n * 2) + 1; }
                int g(int m) { return m + 10; }
            }
            """
        )
        assert constant_before_print(icfg, results) == 17


class TestDifferentialAgainstInterpreter:
    @pytest.mark.parametrize("seed", [3, 8, 21])
    def test_constants_match_execution(self, seed):
        """Where the analysis claims a constant at a print, the executed
        value must equal it (on annotation-free generated programs)."""
        from repro.spl.generator import SubjectSpec, generate_subject

        spec = SubjectSpec(
            name=f"cp-{seed}",
            seed=seed,
            classes=4,
            entry_fanout=5,
            annotation_density=0.0,
            reachable_features=("A",),
            source_density=0.0,
        )
        product_line = generate_subject(spec)
        icfg = product_line.icfg
        results = IDESolver(ConstantPropagation(icfg)).solve()
        trace = Interpreter(product_line.ir, fuel=50_000).run()
        for stmt, value in trace.prints:
            if not isinstance(value.data, int):
                continue
            predicted = ConstantPropagation.constant_at(
                results, stmt, stmt.value.name
            )
            if predicted not in (TOP, BOTTOM):
                assert predicted == value.data, (stmt.location, predicted, value)
