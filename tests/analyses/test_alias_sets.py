"""Tests for the alias-set analysis, plain and lifted."""

import pytest

from repro.analyses.alias_sets import AliasSetAnalysis
from repro.core import SPLLift
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, lower_program
from repro.minijava import parse_program

BOX = "class Box { int v; }\n"


def solve(body, extra=""):
    source = BOX + f"class Main {{ void main() {{ {body} }} {extra} }}"
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = AliasSetAnalysis(icfg)
    return icfg, problem, IFDSSolver(problem).solve()


def at_exit(icfg, method="Main.main"):
    return icfg.program.method(method).instructions[-1]


class TestIntraProcedural:
    def test_copy_aliases(self):
        icfg, problem, results = solve("Box a = new Box(); Box b = a; print(1);")
        stmt = at_exit(icfg)
        assert AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_distinct_allocations_do_not_alias(self):
        icfg, problem, results = solve("Box a = new Box(); Box b = new Box();")
        stmt = at_exit(icfg)
        assert not AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_reassignment_breaks_alias(self):
        icfg, problem, results = solve(
            "Box a = new Box(); Box b = a; b = new Box();"
        )
        stmt = at_exit(icfg)
        assert not AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_chain_of_copies(self):
        icfg, problem, results = solve(
            "Box a = new Box(); Box b = a; Box c = b;"
        )
        stmt = at_exit(icfg)
        assert AliasSetAnalysis.may_alias(results, stmt, "a", "c")

    def test_branch_may_alias(self):
        icfg, problem, results = solve(
            """
            Box a = new Box();
            Box b = new Box();
            int c = nondet();
            if (c < 1) { b = a; }
            print(c);
            """
        )
        stmt = at_exit(icfg)
        assert AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_self_alias_trivially_true(self):
        icfg, problem, results = solve("Box a = new Box();")
        assert AliasSetAnalysis.may_alias(results, at_exit(icfg), "a", "a")


class TestInterProcedural:
    def test_identity_function_preserves_alias(self):
        icfg, problem, results = solve(
            "Box a = new Box(); Box b = same(a);",
            extra="Box same(Box p) { return p; }",
        )
        stmt = at_exit(icfg)
        assert AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_fresh_object_from_callee_does_not_alias(self):
        icfg, problem, results = solve(
            "Box a = new Box(); Box b = fresh();",
            extra="Box fresh() { Box made = new Box(); return made; }",
        )
        stmt = at_exit(icfg)
        assert not AliasSetAnalysis.may_alias(results, stmt, "a", "b")

    def test_alias_visible_inside_callee(self):
        icfg, problem, results = solve(
            "Box a = new Box(); consume(a, a);",
            extra="void consume(Box p, Box q) { print(1); }",
        )
        consume_exit = at_exit(icfg, "Main.consume")
        assert AliasSetAnalysis.may_alias(results, consume_exit, "p", "q")

    def test_unrelated_arguments_do_not_alias_in_callee(self):
        icfg, problem, results = solve(
            "Box a = new Box(); Box b = new Box(); consume(a, b);",
            extra="void consume(Box p, Box q) { print(1); }",
        )
        consume_exit = at_exit(icfg, "Main.consume")
        assert not AliasSetAnalysis.may_alias(results, consume_exit, "p", "q")


class TestLifted:
    def test_alias_constraint(self):
        """a and b alias exactly when the Share feature is enabled."""
        source = BOX + """
        class Main {
            void main() {
                Box a = new Box();
                Box b = new Box();
                #ifdef (Share)
                b = a;
                #endif
                print(1);
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = AliasSetAnalysis(icfg)
        results = SPLLift(problem).solve()
        stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        # The set {a, b} holds exactly under Share.
        shared = results.constraint_for(stmt, frozenset({"a", "b"}))
        assert str(shared) == "Share"
        # The singleton {b} (its own fresh object) survives exactly when
        # the aliasing assignment does NOT overwrite it.
        alone = results.constraint_for(stmt, frozenset({"b"}))
        assert str(alone) == "!Share"
