"""Unit tests for the taint analysis (plain, unlifted)."""

import pytest

from repro.analyses import FieldFact, LocalFact, TaintAnalysis
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, lower_program
from repro.minijava import parse_program


def solve(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    return icfg, IFDSSolver(TaintAnalysis(icfg)).solve()


def facts_before_print(icfg, results):
    stmt = next(s for s in icfg.reachable_instructions() if isinstance(s, Print))
    return results.at(stmt)


class TestLocalFlows:
    def test_source_taints(self):
        icfg, results = solve(
            "class Main { void main() { int x = secret(); print(x); } }"
        )
        assert LocalFact("x") in facts_before_print(icfg, results)

    def test_copy_propagates(self):
        icfg, results = solve(
            "class Main { void main() { int x = secret(); int y = x; print(y); } }"
        )
        facts = facts_before_print(icfg, results)
        assert {LocalFact("x"), LocalFact("y")} <= set(facts)

    def test_arithmetic_propagates(self):
        icfg, results = solve(
            "class Main { void main() { int x = secret(); int y = x + 1; print(y); } }"
        )
        assert LocalFact("y") in facts_before_print(icfg, results)

    def test_overwrite_kills(self):
        icfg, results = solve(
            "class Main { void main() { int x = secret(); x = 0; print(x); } }"
        )
        assert LocalFact("x") not in facts_before_print(icfg, results)

    def test_constant_does_not_taint(self):
        icfg, results = solve(
            "class Main { void main() { int x = 1; print(x); } }"
        )
        assert not facts_before_print(icfg, results)

    def test_self_assignment_keeps_taint(self):
        icfg, results = solve(
            "class Main { void main() { int x = secret(); x = x + 0; print(x); } }"
        )
        assert LocalFact("x") in facts_before_print(icfg, results)


class TestFieldFlows:
    def test_store_then_load(self):
        icfg, results = solve(
            """
            class Main {
                int f;
                void main() { this.f = secret(); int y = this.f; print(y); }
            }
            """
        )
        facts = facts_before_print(icfg, results)
        assert LocalFact("y") in facts
        assert FieldFact("Main", "f") in facts

    def test_weak_update_never_untaints(self):
        icfg, results = solve(
            """
            class Main {
                int f;
                void main() {
                    this.f = secret();
                    this.f = 0;
                    int y = this.f;
                    print(y);
                }
            }
            """
        )
        # Weak updates: the clean store does not kill (receivers merged).
        assert LocalFact("y") in facts_before_print(icfg, results)

    def test_field_through_method(self):
        icfg, results = solve(
            """
            class Main {
                int f;
                void main() { poison(); int y = this.f; print(y); }
                void poison() { this.f = secret(); }
            }
            """
        )
        assert LocalFact("y") in facts_before_print(icfg, results)


class TestInterProcedural:
    def test_param_return_chain(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int x = secret(); int y = pass(x); print(y); }
                int pass(int p) { return p; }
            }
            """
        )
        assert LocalFact("y") in facts_before_print(icfg, results)

    def test_untainted_result_kills_previous_taint(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int y = secret(); y = zero(); print(y); }
                int zero() { return 0; }
            }
            """
        )
        assert LocalFact("y") not in facts_before_print(icfg, results)

    def test_second_argument_position(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int x = secret(); int y = second(0, x); print(y); }
                int second(int a, int b) { return b; }
            }
            """
        )
        assert LocalFact("y") in facts_before_print(icfg, results)

    def test_unused_argument_does_not_leak(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int x = secret(); int y = first(0, x); print(y); }
                int first(int a, int b) { return a; }
            }
            """
        )
        assert LocalFact("y") not in facts_before_print(icfg, results)

    def test_sink_queries_cover_prints_of_locals(self):
        source = "class Main { void main() { int x = 1; print(x); print(2); } }"
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        queries = TaintAnalysis.sink_queries(icfg)
        # print(2) prints a constant — not a query
        assert len(queries) == 1
        assert queries[0][1] == LocalFact("x")

    def test_virtual_dispatch_joins_targets(self):
        icfg, results = solve(
            """
            class A { int get() { return 0; } }
            class B extends A { int get() { return secret(); } }
            class Main {
                void main() { A a = new A(); int y = a.get(); print(y); }
            }
            """
        )
        # CHA: both A.get and B.get are possible — conservative leak.
        assert LocalFact("y") in facts_before_print(icfg, results)
