"""Unit tests for the Possible Types analysis."""

import pytest

from repro.analyses import PossibleTypesAnalysis, TypedField, TypedLocal
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, Return, lower_program
from repro.minijava import parse_program


def solve(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    return icfg, IFDSSolver(PossibleTypesAnalysis(icfg)).solve()


def facts_at_last_return(icfg, results, method="Main.main"):
    m = icfg.program.method(method)
    return results.at(m.instructions[-1])


class TestAllocationSites:
    def test_new_assigns_type(self):
        icfg, results = solve(
            "class A {} class Main { void main() { A a = new A(); } }"
        )
        assert TypedLocal("a", "A") in facts_at_last_return(icfg, results)

    def test_copy_propagates_type(self):
        icfg, results = solve(
            "class A {} class Main { void main() { A a = new A(); A b = a; } }"
        )
        facts = facts_at_last_return(icfg, results)
        assert TypedLocal("b", "A") in facts
        assert TypedLocal("a", "A") in facts

    def test_reassignment_strong_update(self):
        icfg, results = solve(
            """
            class A {} class B {}
            class Main { void main() { A x = new A(); x = null; B y = new B(); } }
            """
        )
        facts = facts_at_last_return(icfg, results)
        assert TypedLocal("x", "A") not in facts  # killed by null
        assert TypedLocal("y", "B") in facts

    def test_branch_merges_types(self):
        icfg, results = solve(
            """
            class A {} class B extends A {}
            class Main { void main() {
                int c = nondet();
                A x = new A();
                if (c < 1) { x = new B(); }
                print(c);
            } }
            """
        )
        facts = facts_at_last_return(icfg, results)
        assert TypedLocal("x", "A") in facts
        assert TypedLocal("x", "B") in facts

    def test_entry_receiver_seeded(self):
        icfg, results = solve("class Main { void main() { int x = 0; } }")
        assert TypedLocal("this", "Main") in facts_at_last_return(icfg, results)


class TestFieldsAndCalls:
    def test_field_store_load(self):
        icfg, results = solve(
            """
            class A {}
            class Main {
                A dep;
                void main() { this.dep = new A(); A x = this.dep; }
            }
            """
        )
        facts = facts_at_last_return(icfg, results)
        assert TypedField("Main", "dep", "A") in facts
        assert TypedLocal("x", "A") in facts

    def test_type_through_return(self):
        icfg, results = solve(
            """
            class A {}
            class Main {
                void main() { A x = make(); }
                A make() { A fresh = new A(); return fresh; }
            }
            """
        )
        assert TypedLocal("x", "A") in facts_at_last_return(icfg, results)

    def test_type_through_parameter(self):
        icfg, results = solve(
            """
            class A {}
            class Main {
                void main() { A a = new A(); consume(a); }
                void consume(A p) { A alias = p; }
            }
            """
        )
        consume_exit = facts_at_last_return(icfg, results, "Main.consume")
        assert TypedLocal("p", "A") in consume_exit
        assert TypedLocal("alias", "A") in consume_exit

    def test_receiver_type_flows_to_this(self):
        icfg, results = solve(
            """
            class A { void m() { } }
            class B extends A { }
            class Main {
                void main() { A a = new B(); a.m(); }
            }
            """
        )
        a_m_exit = facts_at_last_return(icfg, results, "A.m")
        assert TypedLocal("this", "B") in a_m_exit

    def test_result_local_killed_across_call(self):
        icfg, results = solve(
            """
            class A {} class B {}
            class Main {
                void main() { A x = new A(); x = other(); }
                A other() { A fresh = new A(); return fresh; }
            }
            """
        )
        facts = facts_at_last_return(icfg, results)
        # x was reassigned from the call; the old binding must be gone
        # and the new one present.
        assert TypedLocal("x", "A") in facts  # via the return value
        count = sum(1 for f in facts if isinstance(f, TypedLocal) and f.name == "x")
        assert count == 1
