"""Tests for the null-pointer analysis, plain and lifted."""

import pytest

from repro.analyses.facts import FieldFact, LocalFact
from repro.analyses.nullness import NullnessAnalysis
from repro.core import SPLLift
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program

BOX = "class Box { int v; Box next; int get() { return this.v; } }\n"


def solve(body, extra=""):
    source = BOX + f"class Main {{ void main() {{ {body} }} {extra} }}"
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = NullnessAnalysis(icfg)
    return problem, IFDSSolver(problem).solve()


def npe_sites(problem, results):
    return sorted(
        {
            stmt.location
            for stmt, fact in problem.dereference_queries()
            if fact in results.at(stmt)
        }
    )


class TestPlainNullness:
    def test_null_literal_flagged(self):
        problem, results = solve("Box b = null; int x = b.get();")
        assert npe_sites(problem, results)

    def test_allocation_is_clean(self):
        problem, results = solve("Box b = new Box(); int x = b.get();")
        assert not npe_sites(problem, results)

    def test_reassignment_to_new_clears(self):
        problem, results = solve(
            "Box b = null; b = new Box(); int x = b.get();"
        )
        assert not npe_sites(problem, results)

    def test_copy_propagates(self):
        problem, results = solve("Box a = null; Box b = a; int x = b.get();")
        assert npe_sites(problem, results)

    def test_branch_merge(self):
        problem, results = solve(
            """
            int c = nondet();
            Box b = new Box();
            if (c < 1) { b = null; }
            int x = b.get();
            """
        )
        assert npe_sites(problem, results)

    def test_unassigned_field_may_be_null(self):
        problem, results = solve(
            "Box b = new Box(); Box n = b.next; int x = n.get();"
        )
        assert npe_sites(problem, results)

    def test_field_store_and_load(self):
        problem, results = solve(
            "Box b = new Box(); b.next = null; Box n = b.next; int x = n.get();"
        )
        assert npe_sites(problem, results)

    def test_null_through_parameter(self):
        problem, results = solve(
            "use(null);",
            extra="void use(Box p) { int x = p.get(); }",
        )
        assert any("use" in site for site in npe_sites(problem, results))

    def test_null_through_return(self):
        problem, results = solve(
            "Box b = maybe(); int x = b.get();",
            extra="Box maybe() { return null; }",
        )
        assert npe_sites(problem, results)

    def test_non_null_return_clean(self):
        problem, results = solve(
            "Box b = fresh(); int x = b.get();",
            extra="Box fresh() { Box made = new Box(); return made; }",
        )
        assert not npe_sites(problem, results)


class TestLiftedNullness:
    def test_constraint_for_feature_guarded_null(self):
        source = BOX + """
        class Main {
            void main() {
                Box b = new Box();
                #ifdef (Reset)
                b = null;
                #endif
                int x = b.get();
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = NullnessAnalysis(icfg)
        results = SPLLift(problem).solve()
        constraints = [
            results.constraint_for(stmt, fact)
            for stmt, fact in problem.dereference_queries()
        ]
        non_false = [c for c in constraints if not c.is_false]
        assert len(non_false) == 1
        assert str(non_false[0]) == "Reset"

    def test_guarded_initialization(self):
        source = BOX + """
        class Main {
            void main() {
                Box b = null;
                #ifdef (Init)
                b = new Box();
                #endif
                int x = b.get();
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = NullnessAnalysis(icfg)
        results = SPLLift(problem).solve()
        (hit,) = [
            results.constraint_for(stmt, fact)
            for stmt, fact in problem.dereference_queries()
            if not results.constraint_for(stmt, fact).is_false
        ]
        assert str(hit) == "!Init"
