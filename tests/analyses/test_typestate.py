"""Tests for the typestate analysis (file protocol), plain and lifted."""

import pytest

from repro.analyses.typestate import (
    FILE_PROTOCOL,
    TypestateAnalysis,
    TypestateFact,
    TypestateProtocol,
)
from repro.core import SPLLift
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program

FILE_CLASS = """
class File {
    int open() { return 0; }
    int close() { return 0; }
    int read() { return 1; }
    int write() { return 0; }
}
"""


def solve(body, extra=""):
    source = FILE_CLASS + f"class Main {{ void main() {{ {body} }} {extra} }}"
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = TypestateAnalysis(icfg, FILE_PROTOCOL)
    results = IFDSSolver(problem).solve()
    return problem, results


def violations(problem, results):
    return sorted(
        {
            stmt.location
            for stmt, fact in problem.violation_queries()
            if fact in results.at(stmt)
        }
    )


class TestProtocol:
    def test_step(self):
        assert FILE_PROTOCOL.step("closed", "open") == "opened"
        assert FILE_PROTOCOL.step("opened", "close") == "closed"
        assert FILE_PROTOCOL.step("closed", "read") == "error"
        assert FILE_PROTOCOL.step("error", "open") == "error"
        assert FILE_PROTOCOL.step("opened", "irrelevant") == "opened"

    def test_relevant_methods(self):
        assert FILE_PROTOCOL.relevant_methods == {"open", "read", "write", "close"}


class TestPlainTypestate:
    def test_correct_usage(self):
        problem, results = solve(
            "File f = new File(); f.open(); int x = f.read(); f.close();"
        )
        assert not violations(problem, results)

    def test_read_before_open(self):
        problem, results = solve("File f = new File(); int x = f.read();")
        assert violations(problem, results)

    def test_read_after_close(self):
        problem, results = solve(
            "File f = new File(); f.open(); f.close(); int x = f.read();"
        )
        assert violations(problem, results)

    def test_double_open_is_error(self):
        problem, results = solve("File f = new File(); f.open(); f.open();")
        assert violations(problem, results)

    def test_branching_may_violation(self):
        problem, results = solve(
            """
            File f = new File();
            f.open();
            int c = nondet();
            if (c < 1) { f.close(); }
            int x = f.read();
            """
        )
        # On the closing path the read violates; a may-analysis reports it.
        assert violations(problem, results)

    def test_rebinding_resets_tracking(self):
        problem, results = solve(
            "File f = new File(); f.open(); f = new File(); f.open();"
        )
        # The second open is on a fresh object — fine.
        assert not violations(problem, results)

    def test_copy_tracks_both_names(self):
        problem, results = solve(
            "File f = new File(); File g = f; g.open(); int x = g.read();"
        )
        assert not violations(problem, results)

    def test_interprocedural_state_through_param(self):
        problem, results = solve(
            "File f = new File(); use(f);",
            extra="void use(File h) { int x = h.read(); }",
        )
        assert violations(problem, results)  # read on a closed file

    def test_interprocedural_opened_param_ok(self):
        problem, results = solve(
            "File f = new File(); f.open(); use(f);",
            extra="void use(File h) { int x = h.read(); }",
        )
        assert not violations(problem, results)

    def test_state_through_return(self):
        problem, results = solve(
            "File f = make(); int x = f.read();",
            extra="File make() { File fresh = new File(); fresh.open(); return fresh; }",
        )
        assert not violations(problem, results)

    def test_untracked_class_ignored(self):
        protocol = TypestateProtocol(
            name="other",
            tracked_classes=frozenset(("Socket",)),
            initial_state="s0",
            error_state="err",
            transitions={("s0", "open"): "s1"},
        )
        source = FILE_CLASS + "class Main { void main() { File f = new File(); int x = f.read(); } }"
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = TypestateAnalysis(icfg, protocol)
        results = IFDSSolver(problem).solve()
        assert not violations(problem, results)


class TestLiftedTypestate:
    def test_violation_constraint(self):
        """The protocol violation happens exactly when Close is enabled
        before the read and Reopen is disabled."""
        source = FILE_CLASS + """
        class Main {
            void main() {
                File f = new File();
                f.open();
                #ifdef (EagerClose)
                f.close();
                #endif
                #ifdef (Reopen)
                f.open();
                #endif
                int x = f.read();
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = TypestateAnalysis(icfg, FILE_PROTOCOL)
        results = SPLLift(problem).solve()
        constraints = [
            results.constraint_for(stmt, fact)
            for stmt, fact in problem.violation_queries()
        ]
        non_false = [c for c in constraints if not c.is_false]
        assert non_false
        system = results.system
        # read-after-close requires EagerClose;
        # double-open requires EagerClose disabled and Reopen enabled.
        expected_read = system.parse("EagerClose && !Reopen")
        expected_double_open = system.parse("!EagerClose && Reopen")
        assert expected_read in non_false or any(
            c == (expected_read | expected_double_open) for c in non_false
        ) or expected_double_open in non_false

    def test_lifted_agrees_with_a2(self):
        from repro.baselines import solve_a2
        import itertools

        source = FILE_CLASS + """
        class Main {
            void main() {
                File f = new File();
                #ifdef (Open)
                f.open();
                #endif
                int x = f.read();
                #ifdef (Close)
                f.close();
                #endif
                int y = f.read();
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = TypestateAnalysis(icfg, FILE_PROTOCOL)
        results = SPLLift(problem).solve()
        features = ("Close", "Open")
        for bits in itertools.product((False, True), repeat=2):
            config = frozenset(f for f, b in zip(features, bits) if b)
            a2 = solve_a2(problem, config)
            for stmt, fact in problem.violation_queries():
                a2_hit = fact in a2.at(stmt)
                lifted_hit = results.holds_in(stmt, fact, config, over=features)
                assert a2_hit == lifted_hit, (stmt.location, fact, config)
