"""Unit tests for the uninitialized-variables analysis."""

import pytest

from repro.analyses import (
    LocalFact,
    UninitializedVariablesAnalysis,
    uses_of,
)
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, lower_program
from repro.minijava import parse_program


def solve(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = UninitializedVariablesAnalysis(icfg)
    return icfg, problem, IFDSSolver(problem).solve()


def uninit_reads(icfg, problem, results):
    return [
        (stmt.location, fact.name)
        for stmt, fact in problem.use_queries()
        if fact in results.at(stmt)
    ]


class TestIntraProcedural:
    def test_declared_but_never_assigned(self):
        icfg, problem, results = solve(
            "class Main { void main() { int x; print(x); } }"
        )
        assert ("Main.main:1", "x") in uninit_reads(icfg, problem, results)

    def test_initialized_declaration_is_clean(self):
        icfg, problem, results = solve(
            "class Main { void main() { int x = 1; print(x); } }"
        )
        assert not uninit_reads(icfg, problem, results)

    def test_assignment_initializes(self):
        icfg, problem, results = solve(
            "class Main { void main() { int x; x = 1; print(x); } }"
        )
        assert ("Main.main:2", "x") not in uninit_reads(icfg, problem, results)

    def test_partial_initialization_in_branch(self):
        icfg, problem, results = solve(
            """
            class Main { void main() {
                int c = nondet();
                int x;
                if (c < 1) { x = 1; }
                print(x);
            } }
            """
        )
        reads = uninit_reads(icfg, problem, results)
        assert any(name == "x" for _, name in reads)

    def test_initialization_in_both_branches(self):
        icfg, problem, results = solve(
            """
            class Main { void main() {
                int c = nondet();
                int x;
                if (c < 1) { x = 1; } else { x = 2; }
                print(x);
            } }
            """
        )
        reads = [r for r in uninit_reads(icfg, problem, results) if r[1] == "x"]
        # x is initialized on every path to the print
        print_reads = [r for r in reads if "Print" in r[0] or True]
        icfg_print = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert LocalFact("x") not in results.at(icfg_print)


class TestInterProcedural:
    def test_uninitialized_actual_taints_formal(self):
        """The paper's example: foo(x) with x potentially uninitialized —
        all uses of foo's formal may access an uninitialized value."""
        icfg, problem, results = solve(
            """
            class Main {
                void main() { int x; int y = foo(x); }
                int foo(int p) { print(p); return p; }
            }
            """
        )
        reads = uninit_reads(icfg, problem, results)
        assert any(name == "p" for _, name in reads)

    def test_initialized_actual_keeps_formal_clean(self):
        icfg, problem, results = solve(
            """
            class Main {
                void main() { int x = 1; int y = foo(x); }
                int foo(int p) { print(p); return p; }
            }
            """
        )
        reads = uninit_reads(icfg, problem, results)
        assert not any(name == "p" for _, name in reads)

    def test_uninitialized_return_value(self):
        icfg, problem, results = solve(
            """
            class Main {
                void main() { int y = bad(); print(y); }
                int bad() { int u; return u; }
            }
            """
        )
        reads = uninit_reads(icfg, problem, results)
        assert any(name == "y" for _, name in reads)

    def test_call_initializes_result(self):
        icfg, problem, results = solve(
            """
            class Main {
                void main() { int y; y = good(); print(y); }
                int good() { return 1; }
            }
            """
        )
        icfg_print = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert LocalFact("y") not in results.at(icfg_print)

    def test_callee_locals_seeded_per_call(self):
        icfg, problem, results = solve(
            """
            class Main {
                void main() { int a = helper(); }
                int helper() { int u; print(u); return 0; }
            }
            """
        )
        reads = uninit_reads(icfg, problem, results)
        assert any(name == "u" for _, name in reads)


class TestUsesOf:
    def test_uses_extraction(self):
        source = """
        class Main {
            int f;
            void main() {
                int a = 1;
                int b = a + 2;
                this.f = b;
                int c = this.f;
                if (c < 1) { print(c); }
                int d = pass(b);
                print(d);
            }
            int pass(int p) { return p; }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        main = icfg.program.method("Main.main")
        used = set()
        for instr in main.instructions:
            used.update(uses_of(instr))
        assert {"a", "b", "c", "d", "this"} <= used
