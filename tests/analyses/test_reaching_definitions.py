"""Unit tests for the inter-procedural reaching-definitions analysis."""

import pytest

from repro.analyses import DefFact, ReachingDefinitionsAnalysis
from repro.ifds import IFDSSolver
from repro.ir import Assign, ICFG, Invoke, Print, Return, lower_program
from repro.minijava import parse_program


def solve(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    return icfg, IFDSSolver(ReachingDefinitionsAnalysis(icfg)).solve()


def defs_of(results, stmt, name):
    return {f.site for f in results.at(stmt) if isinstance(f, DefFact) and f.name == name}


def stmt_at(icfg, method, index):
    return icfg.program.method(method).instructions[index]


class TestIntraProcedural:
    def test_definition_reaches_use(self):
        icfg, results = solve(
            "class Main { void main() { int x = 1; print(x); } }"
        )
        print_stmt = stmt_at(icfg, "Main.main", 1)
        assert defs_of(results, print_stmt, "x") == {stmt_at(icfg, "Main.main", 0)}

    def test_redefinition_kills(self):
        icfg, results = solve(
            "class Main { void main() { int x = 1; x = 2; print(x); } }"
        )
        print_stmt = stmt_at(icfg, "Main.main", 2)
        assert defs_of(results, print_stmt, "x") == {stmt_at(icfg, "Main.main", 1)}

    def test_branches_merge_definitions(self):
        icfg, results = solve(
            """
            class Main { void main() {
                int c = nondet();
                int x = 1;
                if (c < 1) { x = 2; }
                print(x);
            } }
            """
        )
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert len(defs_of(results, print_stmt, "x")) == 2

    def test_loop_definition_reaches_itself(self):
        icfg, results = solve(
            """
            class Main { void main() {
                int x = 0;
                while (x < 3) { x = x + 1; }
                print(x);
            } }
            """
        )
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert len(defs_of(results, print_stmt, "x")) == 2  # init + loop body


class TestInterProcedural:
    SOURCE = """
    class Main {
        void main() {
            int x = 1;
            int y = pass(x);
            print(y);
        }
        int pass(int p) { return p; }
    }
    """

    def test_argument_definition_reaches_formal(self):
        icfg, results = solve(self.SOURCE)
        x_def = stmt_at(icfg, "Main.main", 0)
        pass_return = stmt_at(icfg, "Main.pass", 0)
        assert defs_of(results, pass_return, "p") == {x_def}

    def test_definition_traced_through_return(self):
        """The paper's "variant that tracks definitions through parameter
        and return-value assignments": y's value is x's definition."""
        icfg, results = solve(self.SOURCE)
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        x_def = stmt_at(icfg, "Main.main", 0)
        assert defs_of(results, print_stmt, "y") == {x_def}

    def test_constant_return_defines_at_exit(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int y = fresh(); print(y); }
                int fresh() { return 42; }
            }
            """
        )
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        (site,) = defs_of(results, print_stmt, "y")
        assert isinstance(site, Return)

    def test_constant_argument_defines_at_call(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int y = pass(7); print(y); }
                int pass(int p) { return p; }
            }
            """
        )
        pass_exit = stmt_at(icfg, "Main.pass", 0)
        (site,) = defs_of(results, pass_exit, "p")
        assert isinstance(site, Invoke)

    def test_call_kills_previous_result_definitions(self):
        icfg, results = solve(
            """
            class Main {
                void main() { int y = 1; y = pass(2); print(y); }
                int pass(int p) { return p; }
            }
            """
        )
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        sites = defs_of(results, print_stmt, "y")
        first_def = stmt_at(icfg, "Main.main", 0)
        assert first_def not in sites
        assert len(sites) == 1

    def test_callee_locals_invisible_to_caller(self):
        icfg, results = solve(self.SOURCE)
        print_stmt = next(
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        )
        assert not defs_of(results, print_stmt, "p")
