"""Deep-ordering regression tests for the iterative BDD kernels.

The original apply/restrict/quantifier walks recursed once per variable
level, so any ordering deeper than Python's recursion limit (a ~1,000
variable chain) died with ``RecursionError``.  The iterative kernels must
handle orderings an order of magnitude deeper, fast, with correct model
counts.
"""

import sys

import pytest

from repro.bdd import BDDManager

N = 5000


@pytest.fixture(scope="module")
def deep():
    """A manager holding the 5,000-variable conjunction chain."""
    manager = BDDManager()
    names = [f"v{i:04d}" for i in range(N)]
    chain = manager.and_all(manager.var(name) for name in names)
    return manager, names, chain


def test_deep_chain_builds_without_recursion_error(deep):
    manager, names, chain = deep
    # One decision node per variable; the chain is the canonical AND.
    assert manager.node_count(chain) == N
    assert N * 4 > sys.getrecursionlimit(), "not actually a deep case"


def test_deep_chain_model_count(deep):
    manager, names, chain = deep
    # Exactly one satisfying assignment: all variables true.
    assert manager.satcount(chain) == 1
    # Repeat call must rescale from the memo identically (regression for
    # the cached-satcount bug).
    assert manager.satcount(chain) == 1


def test_deep_disjunction_model_count(deep):
    manager, names, chain = deep
    any_of = manager.or_all(manager.var(name) for name in names)
    assert manager.satcount(any_of) == (1 << N) - 1


def test_deep_negation_and_restrict(deep):
    manager, names, chain = deep
    negated = manager.not_(chain)
    assert manager.satcount(negated) == (1 << N) - 1
    assert manager.not_(negated) == chain
    pinned = manager.restrict(chain, names[N // 2], True)
    assert manager.node_count(pinned) == N - 1
    assert manager.satcount(pinned, over=names) == 2


def test_deep_evaluate_and_models(deep):
    manager, names, chain = deep
    all_true = {name: True for name in names}
    assert manager.evaluate(chain, all_true)
    all_true[names[-1]] = False
    assert not manager.evaluate(chain, all_true)
    models = iter(manager.iter_models(chain, names))
    model = next(models)
    assert all(model[name] for name in names)
    assert next(models, None) is None


def test_deep_xor_parity():
    # Balanced fold: a linear left fold would materialize O(N^2) garbage
    # nodes (every intermediate parity prefix survives in the unique
    # table), so reduce pairwise — O(N log N) total nodes instead.
    manager = BDDManager()
    names = [f"p{i:04d}" for i in range(N)]
    layer = [manager.var(name) for name in names]
    while len(layer) > 1:
        reduced = [
            manager.xor(layer[i], layer[i + 1])
            for i in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            reduced.append(layer[-1])
        layer = reduced
    parity = layer[0]
    assert manager.node_count(parity) == 2 * N - 1
    # Parity of N variables: half of all assignments have odd weight.
    assert manager.satcount(parity, over=names) == 1 << (N - 1)
