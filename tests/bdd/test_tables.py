"""Tests for the data-oriented node store (packed keys, growth, free list)."""

import pytest

from repro.bdd import BDDError, BDDManager
from repro.bdd.tables import FALSE, TRUE, NodeStore


def shrink(store, shift=4):
    """Rewind a store's key width so growth triggers on tiny workloads.

    Only valid while the unique table is empty (no keys to re-pack).
    """
    assert not store.unique
    store.shift = shift
    store.limit = 1 << shift


class TestNodeStore:
    def test_mk_collapses_redundant_test(self):
        store = NodeStore()
        assert store.mk(0, TRUE, TRUE) == TRUE
        assert store.mk(3, FALSE, FALSE) == FALSE

    def test_mk_interns(self):
        store = NodeStore()
        n1 = store.mk(0, FALSE, TRUE)
        n2 = store.mk(0, FALSE, TRUE)
        assert n1 == n2
        assert len(store.unique) == 1

    def test_columns_indexed_by_id(self):
        store = NodeStore()
        n = store.mk(7, FALSE, TRUE)
        assert store.level[n] == 7
        assert store.low[n] == FALSE
        assert store.high[n] == TRUE

    def test_grow_rekeys_existing_nodes(self):
        store = NodeStore()
        shrink(store, shift=3)  # ids/levels up to 8
        nodes = {}
        for level in range(8):
            nodes[level] = store.mk(level, FALSE, TRUE)
        assert store.rebuilds >= 1
        assert store.shift > 3
        # Every pre-growth node is still found under its re-packed key.
        for level, node in nodes.items():
            assert store.mk(level, FALSE, TRUE) == node
        assert len(store.unique) == len(nodes)

    def test_grow_clears_registered_caches_in_place(self):
        store = NodeStore()
        shrink(store, shift=3)
        cache = {123: 456}
        store.grow_clears = (cache,)
        alias = cache  # kernels hold direct references across a rebuild
        for level in range(8):
            store.mk(level, FALSE, TRUE)
        assert store.rebuilds >= 1
        assert alias == {} and alias is cache

    def test_free_list_reuse(self):
        store = NodeStore()
        n = store.mk(0, FALSE, TRUE)
        key = store.key(0, FALSE, TRUE)
        del store.unique[key]
        store.retire(n)
        m = store.mk(1, TRUE, FALSE)
        assert m == n  # slot recycled, columns rewritten
        assert store.level[m] == 1
        assert len(store.level) == 3  # terminals + one recycled slot

    def test_load_factor(self):
        store = NodeStore()
        assert store.load_factor() == 0.0
        store.mk(0, FALSE, TRUE)
        assert store.load_factor() == pytest.approx(1 / store.limit)


class TestManagerGrowth:
    """End-to-end: amortized-doubling rebuilds mid-operation stay correct."""

    def _tiny_manager(self):
        mgr = BDDManager()
        shrink(mgr._store, shift=4)  # grow after ~14 internal nodes
        return mgr

    def test_semantics_survive_rebuilds(self):
        mgr = self._tiny_manager()
        ref = BDDManager()
        names = [f"x{i}" for i in range(6)]

        def build(m):
            xs = [m.var(n) for n in names]
            f = m.or_(m.and_(xs[0], xs[1]), m.xor(xs[2], xs[3]))
            return m.and_(f, m.or_(xs[4], m.not_(xs[5])))

        f_tiny, f_ref = build(mgr), build(ref)
        assert mgr._store.rebuilds >= 1, "workload must cross the growth limit"
        assert ref._store.rebuilds == 0
        for bits in range(1 << len(names)):
            assign = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
            assert mgr.evaluate(f_tiny, assign) == ref.evaluate(f_ref, assign)
        assert mgr.satcount(f_tiny) == ref.satcount(f_ref)

    def test_growth_inside_wide_conjunction(self):
        mgr = self._tiny_manager()
        chain = mgr.and_all(mgr.var(f"v{i:02d}") for i in range(40))
        assert mgr._store.rebuilds >= 1
        assert mgr.satcount(chain) == 1
        assert mgr.node_count(chain) == 40

    def test_foreign_node_still_rejected_after_growth(self):
        mgr = self._tiny_manager()
        mgr.and_all(mgr.var(f"v{i:02d}") for i in range(40))
        with pytest.raises(BDDError):
            mgr.not_(10_000_000)


class TestSiftRetirement:
    def test_sift_recycles_retired_slots(self):
        mgr = BDDManager()
        xs = [mgr.var(f"x{i}") for i in range(8)]
        # An order-sensitive function: pairs (x0&x4) | (x1&x5) | ...
        f = mgr.or_all(mgr.and_(xs[i], xs[i + 4]) for i in range(4))
        mgr.sift([f])
        free_after_first = len(mgr._store.free)
        total_after_first = mgr.total_nodes()
        # Build more structure; retired slots must be reused before the
        # columns grow.
        g = mgr.and_(f, xs[0])
        assert mgr.total_nodes() <= total_after_first + max(
            0, 4 - free_after_first
        ) + 4
        # Repeated sifting of the same roots must not leak column growth.
        for _ in range(3):
            mgr.sift([f, g])
        assert mgr.total_nodes() <= total_after_first + 8

    def test_sift_preserves_semantics_with_reuse(self):
        mgr = BDDManager()
        names = [f"x{i}" for i in range(6)]
        xs = [mgr.var(n) for n in names]
        f = mgr.or_all(mgr.and_(xs[i], xs[(i + 3) % 6]) for i in range(6))
        models_before = list(mgr.iter_models(f))
        count_before = mgr.satcount(f)
        for _ in range(2):
            mgr.sift([f])
        assert mgr.satcount(f) == count_before
        assert sorted(
            tuple(sorted(m.items())) for m in mgr.iter_models(f)
        ) == sorted(tuple(sorted(m.items())) for m in models_before)
