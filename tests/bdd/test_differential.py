"""Differential tests for the data-oriented BDD core.

Random operation streams (build / apply / restrict / quantify /
satcount / sift) run through the array-backed manager and are checked
against an exact truth-table reference (functions over 5 variables as
32-bit masks).  The same streams run on a manager whose store starts
with a tiny key width, so amortized-doubling rebuilds fire mid-stream;
results must be independent of growth.  Final results additionally
round-trip through the cross-process serialization codec and through
the DNF reference backend.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.constraints import BddConstraintSystem, DnfConstraintSystem
from repro.constraints.serialize import decode_constraints, encode_constraints

VARS = ("a", "b", "c", "d", "e")
NASSIGN = 1 << len(VARS)
FULL = (1 << NASSIGN) - 1

#: assignment index -> {name: bool}
ASSIGNMENTS = [
    {name: bool(bits >> i & 1) for i, name in enumerate(VARS)}
    for bits in range(NASSIGN)
]


def _var_mask(index: int) -> int:
    return sum(
        1 << a for a in range(NASSIGN) if a >> index & 1
    )


VAR_MASKS = [_var_mask(i) for i in range(len(VARS))]


def _restrict_mask(mask: int, index: int, value: bool) -> int:
    out = 0
    for a in range(NASSIGN):
        fixed = (a | (1 << index)) if value else (a & ~(1 << index))
        if mask >> fixed & 1:
            out |= 1 << a
    return out


_var_idx = st.integers(min_value=0, max_value=len(VARS) - 1)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("and"), st.integers(0), st.integers(0)),
        st.tuples(st.just("or"), st.integers(0), st.integers(0)),
        st.tuples(st.just("xor"), st.integers(0), st.integers(0)),
        st.tuples(st.just("not"), st.integers(0), st.integers(0)),
        st.tuples(st.just("restrict"), st.integers(0), _var_idx),
        st.tuples(st.just("exists"), st.integers(0), _var_idx),
        st.tuples(st.just("forall"), st.integers(0), _var_idx),
        st.tuples(st.just("sift"), st.integers(0), st.integers(0)),
    ),
    min_size=1,
    max_size=24,
)


def _run_stream(mgr, ops):
    """Apply an op stream; returns parallel lists of (node, exact mask)."""
    nodes = [mgr.false, mgr.true] + [mgr.var(name) for name in VARS]
    masks = [0, FULL] + VAR_MASKS
    for op, i, j in ops:
        a = nodes[i % len(nodes)]
        ma = masks[i % len(masks)]
        if op == "and":
            b, mb = nodes[j % len(nodes)], masks[j % len(masks)]
            nodes.append(mgr.and_(a, b))
            masks.append(ma & mb)
        elif op == "or":
            b, mb = nodes[j % len(nodes)], masks[j % len(masks)]
            nodes.append(mgr.or_(a, b))
            masks.append(ma | mb)
        elif op == "xor":
            b, mb = nodes[j % len(nodes)], masks[j % len(masks)]
            nodes.append(mgr.xor(a, b))
            masks.append(ma ^ mb)
        elif op == "not":
            nodes.append(mgr.not_(a))
            masks.append(FULL & ~ma)
        elif op == "restrict":
            value = bool(i & 1)
            nodes.append(mgr.restrict(a, VARS[j], value))
            masks.append(_restrict_mask(ma, j, value))
        elif op == "exists":
            nodes.append(mgr.exists(a, [VARS[j]]))
            masks.append(
                _restrict_mask(ma, j, False) | _restrict_mask(ma, j, True)
            )
        elif op == "forall":
            nodes.append(mgr.forall(a, [VARS[j]]))
            masks.append(
                _restrict_mask(ma, j, False) & _restrict_mask(ma, j, True)
            )
        else:  # sift: ids in `nodes` keep denoting the same functions
            mgr.sift(nodes)
    return nodes, masks


def _check_against_masks(mgr, nodes, masks):
    for node, mask in zip(nodes, masks):
        assert mgr.satcount(node, over=VARS) == bin(mask).count("1")
        for a, assignment in enumerate(ASSIGNMENTS):
            assert mgr.evaluate(node, assignment) == bool(mask >> a & 1), (
                f"node {node} disagrees with reference at {assignment}"
            )


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_operation_stream_matches_truth_tables(ops):
    mgr = BDDManager(ordering=VARS)
    nodes, masks = _run_stream(mgr, ops)
    _check_against_masks(mgr, nodes, masks)


@given(_ops)
@settings(max_examples=60, deadline=None)
def test_operation_stream_survives_table_growth(ops):
    """Same streams on a store that starts 4 bits wide: every few nodes
    trigger an amortized-doubling rebuild, including mid-kernel."""
    mgr = BDDManager()
    mgr._store.shift = 4
    mgr._store.limit = 16
    for name in VARS:
        mgr.var(name)
    nodes, masks = _run_stream(mgr, ops)
    _check_against_masks(mgr, nodes, masks)
    reference = BDDManager(ordering=VARS)
    ref_nodes, _ = _run_stream(reference, ops)
    # Growth never changes function identity: expression renderings of
    # corresponding results agree (sift may change orders, so compare
    # only when neither manager reordered).
    if not ops or all(op != "sift" for op, _, _ in ops):
        for n1, n2 in zip(nodes, ref_nodes):
            assert mgr.to_expr_string(n1) == reference.to_expr_string(n2)


@given(_ops)
@settings(max_examples=60, deadline=None)
def test_stream_results_roundtrip_through_codec(ops):
    system = BddConstraintSystem()
    for name in VARS:
        system.var(name)
    nodes, masks = _run_stream(system.manager, ops)
    constraints = [system.wrap_node(node) for node in nodes]
    document = encode_constraints(system, constraints)
    # Decode into a system declared in reverse order: the codec promises
    # canonicality in the receiver's order, not the sender's.
    receiver = BddConstraintSystem()
    for name in reversed(VARS):
        receiver.var(name)
    decoded = decode_constraints(receiver, document)
    assert len(decoded) == len(constraints)
    for constraint, mask in zip(decoded, masks):
        for a, assignment in enumerate(ASSIGNMENTS):
            assert constraint.satisfied_by(assignment) == bool(mask >> a & 1)


@given(_ops)
@settings(max_examples=40, deadline=None)
def test_stream_results_agree_with_dnf_backend(ops):
    """The abandoned DNF representation is the semantic reference
    implementation (paper §5); rendered results must agree pointwise."""
    mgr = BDDManager(ordering=VARS)
    nodes, masks = _run_stream(mgr, ops)
    dnf = DnfConstraintSystem()
    # Checking every node is quadratic in stream length; the last few
    # results transitively exercise the whole stream.
    for node, mask in list(zip(nodes, masks))[-4:]:
        constraint = dnf.parse(mgr.to_expr_string(node))
        assert constraint.is_false == (mask == 0)
        for a, assignment in enumerate(ASSIGNMENTS):
            assert constraint.satisfied_by(assignment) == bool(mask >> a & 1)
