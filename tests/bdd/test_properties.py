"""Property-based tests: BDD semantics against brute-force evaluation."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.constraints.formula import (
    And,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
)

VARS = ("a", "b", "c", "d")


def formulas(max_depth: int = 4) -> st.SearchStrategy[Formula]:
    base = st.one_of(
        st.sampled_from([TrueConst(), FalseConst()]),
        st.sampled_from(VARS).map(Var),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda t: And(t)),
            st.tuples(children, children).map(lambda t: Or(t)),
            st.tuples(children, children).map(lambda t: Implies(*t)),
            st.tuples(children, children).map(lambda t: Iff(*t)),
        )

    return st.recursive(base, extend, max_leaves=12)


def all_assignments():
    for bits in itertools.product((False, True), repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_brute_force_evaluation(formula):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    for assignment in all_assignments():
        assert mgr.evaluate(node, assignment) == formula.evaluate(assignment)


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_satcount_matches_brute_force(formula):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    expected = sum(
        1 for assignment in all_assignments() if formula.evaluate(assignment)
    )
    assert mgr.satcount(node, over=VARS) == expected


@given(formulas(), formulas())
@settings(max_examples=200, deadline=None)
def test_canonicity(f, g):
    """Two formulas denote the same function iff they share a node."""
    mgr = BDDManager(ordering=VARS)
    node_f, node_g = f.to_bdd(mgr), g.to_bdd(mgr)
    semantically_equal = all(
        f.evaluate(a) == g.evaluate(a) for a in all_assignments()
    )
    assert (node_f == node_g) == semantically_equal


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_double_negation_is_identity(formula):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    assert mgr.not_(mgr.not_(node)) == node


@given(formulas(), formulas())
@settings(max_examples=100, deadline=None)
def test_de_morgan(f, g):
    mgr = BDDManager(ordering=VARS)
    nf, ng = f.to_bdd(mgr), g.to_bdd(mgr)
    assert mgr.not_(mgr.and_(nf, ng)) == mgr.or_(mgr.not_(nf), mgr.not_(ng))


@given(formulas(), st.sampled_from(VARS), st.booleans())
@settings(max_examples=150, deadline=None)
def test_restrict_is_shannon_cofactor(formula, name, value):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    restricted = mgr.restrict(node, name, value)
    for assignment in all_assignments():
        pinned = dict(assignment)
        pinned[name] = value
        assert mgr.evaluate(restricted, assignment) == formula.evaluate(pinned)


@given(formulas(), st.sampled_from(VARS))
@settings(max_examples=100, deadline=None)
def test_exists_or_of_cofactors(formula, name):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    expected = mgr.or_(
        mgr.restrict(node, name, False), mgr.restrict(node, name, True)
    )
    assert mgr.exists(node, [name]) == expected


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_models_satisfy_formula(formula):
    mgr = BDDManager(ordering=VARS)
    node = formula.to_bdd(mgr)
    for model in mgr.iter_models(node, VARS):
        assert formula.evaluate(model)
