"""Property-based tests: sifting preserves semantics, n-ary folds agree.

Reordering moves every internal node around; the properties below pin the
one thing that must never change — the Boolean function each held handle
denotes — against brute-force evaluation over all assignments.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.constraints.bddsystem import BddConstraintSystem
from tests.bdd.test_properties import VARS, all_assignments, formulas


@given(st.lists(formulas(), min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_sift_preserves_evaluation(forms):
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    mgr.sift(nodes)
    for f, node in zip(forms, nodes):
        for assignment in all_assignments():
            assert mgr.evaluate(node, assignment) == f.evaluate(assignment)


@given(st.lists(formulas(), min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_sift_preserves_satcount(forms):
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    expected = [
        sum(1 for a in all_assignments() if f.evaluate(a)) for f in forms
    ]
    mgr.sift(nodes)
    for node, count in zip(nodes, expected):
        assert mgr.satcount(node, over=VARS) == count


@given(st.lists(formulas(), min_size=2, max_size=4), formulas())
@settings(max_examples=60, deadline=None)
def test_apply_after_sift_is_sound(forms, extra):
    """Fresh applies on sifted handles match brute force (caches cleared)."""
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    mgr.sift(nodes)
    combined = nodes[0]
    for node in nodes[1:]:
        combined = mgr.and_(combined, node)
    post = extra.to_bdd(mgr)
    result = mgr.or_(combined, post)
    for assignment in all_assignments():
        expected = all(f.evaluate(assignment) for f in forms) or extra.evaluate(
            assignment
        )
        assert mgr.evaluate(result, assignment) == expected


@given(st.lists(formulas(), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_or_all_matches_pairwise_fold(forms):
    system = BddConstraintSystem()
    constraints = [system.from_formula(f) for f in forms]
    folded = system.false
    for constraint in constraints:
        folded = system.or_(folded, constraint)
    assert system.or_all(constraints) is folded


@given(st.lists(formulas(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_and_all_matches_pairwise_fold(forms):
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    folded = mgr.true
    for node in nodes:
        folded = mgr.and_(folded, node)
    assert mgr.and_all(nodes) == folded


@given(st.lists(formulas(), min_size=1, max_size=4), st.permutations(VARS))
@settings(max_examples=60, deadline=None)
def test_sift_first_seeding_preserves_semantics(forms, seed_order):
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    mgr.sift(nodes, first=tuple(seed_order))
    for f, node in zip(forms, nodes):
        for assignment in all_assignments():
            assert mgr.evaluate(node, assignment) == f.evaluate(assignment)


@given(st.lists(formulas(), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_repeated_sift_is_stable(forms):
    """A second sift over the same roots must not grow the BDD."""
    mgr = BDDManager(ordering=VARS)
    nodes = [f.to_bdd(mgr) for f in forms]
    first = mgr.sift(nodes)
    second = mgr.sift(nodes)
    assert second <= first
    for f, node in zip(forms, nodes):
        for assignment in all_assignments():
            assert mgr.evaluate(node, assignment) == f.evaluate(assignment)
