"""Unit tests for the ROBDD engine."""

import pytest

from repro.bdd import BDDError, BDDManager


@pytest.fixture
def mgr():
    return BDDManager()


class TestTerminals:
    def test_constants_distinct(self, mgr):
        assert mgr.true != mgr.false

    def test_is_true_false(self, mgr):
        assert mgr.is_true(mgr.true)
        assert mgr.is_false(mgr.false)
        assert not mgr.is_true(mgr.false)
        assert not mgr.is_false(mgr.true)

    def test_terminals_are_terminal(self, mgr):
        assert mgr.is_terminal(mgr.true)
        assert mgr.is_terminal(mgr.false)

    def test_terminal_has_no_children(self, mgr):
        with pytest.raises(BDDError):
            mgr.low(mgr.true)
        with pytest.raises(BDDError):
            mgr.high(mgr.false)
        with pytest.raises(BDDError):
            mgr.top_var(mgr.true)


class TestVariables:
    def test_var_is_interned(self, mgr):
        assert mgr.var("x") == mgr.var("x")

    def test_distinct_vars_distinct_nodes(self, mgr):
        assert mgr.var("x") != mgr.var("y")

    def test_nvar_is_negation(self, mgr):
        assert mgr.nvar("x") == mgr.not_(mgr.var("x"))

    def test_declaration_order_is_variable_order(self, mgr):
        mgr.var("a")
        mgr.var("b")
        assert mgr.variables == ("a", "b")
        assert mgr.level_of("a") < mgr.level_of("b")

    def test_explicit_ordering(self):
        mgr = BDDManager(ordering=["z", "y", "x"])
        assert mgr.variables == ("z", "y", "x")

    def test_var_structure(self, mgr):
        x = mgr.var("x")
        assert mgr.top_var(x) == "x"
        assert mgr.low(x) == mgr.false
        assert mgr.high(x) == mgr.true

    def test_unknown_variable_level(self, mgr):
        with pytest.raises(BDDError):
            mgr.level_of("nope")

    def test_has_var(self, mgr):
        assert not mgr.has_var("x")
        mgr.var("x")
        assert mgr.has_var("x")


class TestBooleanOps:
    def test_and_truth_table(self, mgr):
        t, f = mgr.true, mgr.false
        assert mgr.and_(t, t) == t
        assert mgr.and_(t, f) == f
        assert mgr.and_(f, t) == f
        assert mgr.and_(f, f) == f

    def test_or_truth_table(self, mgr):
        t, f = mgr.true, mgr.false
        assert mgr.or_(t, t) == t
        assert mgr.or_(t, f) == t
        assert mgr.or_(f, t) == t
        assert mgr.or_(f, f) == f

    def test_not_involution(self, mgr):
        x = mgr.var("x")
        assert mgr.not_(mgr.not_(x)) == x

    def test_excluded_middle(self, mgr):
        x = mgr.var("x")
        assert mgr.or_(x, mgr.not_(x)) == mgr.true
        assert mgr.and_(x, mgr.not_(x)) == mgr.false

    def test_xor(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.xor(x, x) == mgr.false
        assert mgr.xor(x, mgr.false) == x
        assert mgr.xor(x, mgr.true) == mgr.not_(x)
        assert mgr.xor(x, y) == mgr.xor(y, x)

    def test_implies(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.implies(mgr.false, x) == mgr.true
        assert mgr.implies(x, mgr.true) == mgr.true
        assert mgr.implies(x, x) == mgr.true
        assert mgr.implies(mgr.and_(x, y), x) == mgr.true

    def test_iff(self, mgr):
        x = mgr.var("x")
        assert mgr.iff(x, x) == mgr.true
        assert mgr.iff(x, mgr.not_(x)) == mgr.false

    def test_ite(self, mgr):
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        ite = mgr.ite(x, y, z)
        for vx in (False, True):
            for vy in (False, True):
                for vz in (False, True):
                    expected = vy if vx else vz
                    assert (
                        mgr.evaluate(ite, {"x": vx, "y": vy, "z": vz}) == expected
                    )

    def test_and_all_or_all(self, mgr):
        xs = [mgr.var(f"x{i}") for i in range(4)]
        conj = mgr.and_all(xs)
        disj = mgr.or_all(xs)
        assert mgr.evaluate(conj, {f"x{i}": True for i in range(4)})
        assert not mgr.evaluate(conj, {"x0": False, "x1": True, "x2": True, "x3": True})
        assert mgr.evaluate(disj, {"x0": False, "x1": False, "x2": True, "x3": False})
        assert mgr.and_all([]) == mgr.true
        assert mgr.or_all([]) == mgr.false

    def test_canonicity_same_function_same_node(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        # De Morgan: !(x & y) == !x | !y — canonical representation means
        # node equality.
        assert mgr.not_(mgr.and_(x, y)) == mgr.or_(mgr.not_(x), mgr.not_(y))

    def test_entails_and_equiv(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.entails(mgr.and_(x, y), x)
        assert not mgr.entails(x, mgr.and_(x, y))
        assert mgr.equiv(x, x)
        assert not mgr.equiv(x, y)


class TestRestrictAndQuantify:
    def test_restrict_var(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.and_(x, y)
        assert mgr.restrict(f, "x", True) == y
        assert mgr.restrict(f, "x", False) == mgr.false

    def test_restrict_missing_from_support(self, mgr):
        x = mgr.var("x")
        mgr.var("y")
        assert mgr.restrict(x, "y", True) == x

    def test_exists(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.and_(x, y)
        assert mgr.exists(f, ["x"]) == y
        assert mgr.exists(f, ["x", "y"]) == mgr.true
        assert mgr.exists(mgr.false, ["x"]) == mgr.false

    def test_forall(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.or_(x, y)
        assert mgr.forall(f, ["x"]) == y
        assert mgr.forall(mgr.true, ["x", "y"]) == mgr.true

    def test_evaluate_requires_coverage(self, mgr):
        x = mgr.var("x")
        with pytest.raises(BDDError):
            mgr.evaluate(x, {})

    def test_support(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        mgr.var("z")
        assert mgr.support(mgr.and_(x, y)) == {"x", "y"}
        assert mgr.support(mgr.true) == frozenset()
        # z cancels out of (z | !z) & x
        f = mgr.and_(mgr.or_(mgr.var("z"), mgr.nvar("z")), x)
        assert mgr.support(f) == {"x"}


class TestCounting:
    def test_satcount_simple(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.satcount(mgr.true) == 4
        assert mgr.satcount(mgr.false) == 0
        assert mgr.satcount(x) == 2
        assert mgr.satcount(mgr.and_(x, y)) == 1
        assert mgr.satcount(mgr.or_(x, y)) == 3

    def test_satcount_over_subset(self, mgr):
        x = mgr.var("x")
        mgr.var("y")
        assert mgr.satcount(x, over=["x"]) == 1

    def test_satcount_over_superset(self, mgr):
        x = mgr.var("x")
        assert mgr.satcount(x, over=["x", "w1", "w2"]) == 4

    def test_satcount_missing_support_raises(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        with pytest.raises(BDDError):
            mgr.satcount(mgr.and_(x, y), over=["x"])

    def test_satcount_invalidated_by_new_declaration(self, mgr):
        x = mgr.var("x")
        assert mgr.satcount(x) == 1
        mgr.var("y")
        assert mgr.satcount(x) == 2

    def test_iter_models(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        models = list(mgr.iter_models(mgr.or_(x, y)))
        assert len(models) == 3
        assert {"x": False, "y": True} in models
        assert {"x": True, "y": False} in models
        assert {"x": True, "y": True} in models

    def test_iter_models_deterministic(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.or_(x, y)
        assert list(mgr.iter_models(f)) == list(mgr.iter_models(f))

    def test_iter_models_count_matches_satcount(self, mgr):
        xs = [mgr.var(f"x{i}") for i in range(4)]
        f = mgr.or_(mgr.and_(xs[0], xs[1]), mgr.xor(xs[2], xs[3]))
        assert len(list(mgr.iter_models(f))) == mgr.satcount(f)

    def test_any_model(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.any_model(mgr.false) is None
        model = mgr.any_model(mgr.and_(x, mgr.not_(y)))
        assert model == {"x": True, "y": False}


class TestRendering:
    def test_expr_string_terminals(self, mgr):
        assert mgr.to_expr_string(mgr.true) == "true"
        assert mgr.to_expr_string(mgr.false) == "false"

    def test_expr_string_roundtrips_semantics(self, mgr):
        from repro.constraints.formula import parse_formula

        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.or_(mgr.and_(x, mgr.not_(y)), z)
        reparsed = parse_formula(mgr.to_expr_string(f)).to_bdd(mgr)
        assert reparsed == f

    def test_to_dot_contains_nodes(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        dot = mgr.to_dot(mgr.and_(x, y))
        assert "digraph" in dot
        assert 'label="x"' in dot
        assert 'label="y"' in dot

    def test_node_count(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.node_count(mgr.true) == 0
        assert mgr.node_count(x) == 1
        assert mgr.node_count(mgr.and_(x, y)) == 2

    def test_cache_stats_keys(self, mgr):
        stats = mgr.cache_stats()
        assert set(stats) >= {"nodes", "unique_entries", "apply_cache"}


class TestForeignNodes:
    def test_node_id_out_of_range(self, mgr):
        with pytest.raises(BDDError):
            mgr.not_(12345)
