"""Tests for Rudell sifting and the dynamic-reordering policy plumbing.

The classic sifting showcase: ``(x1 & y1) | (x2 & y2) | (x3 & y3)`` needs
``2^(n+1) - 2`` internal nodes under the ordering ``x1 < x2 < x3 < y1 < y2
< y3`` but only ``2n`` once the pairs are interleaved.  Sifting must find
the interleaved order on its own while every held handle keeps denoting
the same Boolean function.
"""

import pytest

from repro.bdd import BDDManager
from repro.constraints.bddsystem import BddConstraintSystem, REORDER_POLICIES


BAD_ORDER = ["x1", "x2", "x3", "y1", "y2", "y3"]


def pairs_function(manager):
    f = manager.false
    for i in (1, 2, 3):
        f = manager.or_(
            f, manager.and_(manager.var(f"x{i}"), manager.var(f"y{i}"))
        )
    return f


class TestSift:
    def test_shrinks_pairs_function(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        assert manager.node_count(f) == 14
        live_after = manager.sift([f])
        assert live_after == 6
        assert manager.node_count(f) == 6

    def test_finds_interleaved_order(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        manager.sift([f])
        order = [manager.var_at_level(i) for i in range(6)]
        # Each xi must sit adjacent to its yi partner.
        for i in (1, 2, 3):
            assert abs(order.index(f"x{i}") - order.index(f"y{i}")) == 1

    def test_function_preserved(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        models_before = {
            tuple(sorted(m.items())) for m in manager.iter_models(f, BAD_ORDER)
        }
        manager.sift([f])
        models_after = {
            tuple(sorted(m.items())) for m in manager.iter_models(f, BAD_ORDER)
        }
        assert models_before == models_after
        assert manager.satcount(f, BAD_ORDER) == 37

    def test_handles_keep_ids(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        g = manager.and_(manager.var("x1"), manager.var("y1"))
        manager.sift([f, g])
        # g is still "x1 and y1" even though its internals moved.
        assert manager.evaluate(g, {"x1": True, "y1": True})
        assert not manager.evaluate(g, {"x1": True, "y1": False})
        assert manager.entails(g, f)

    def test_counters(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        before = manager.cache_stats()
        assert before["reorders"] == 0
        manager.sift([f])
        after = manager.cache_stats()
        assert after["reorders"] == 1
        assert after["reorder_swaps"] > 0

    def test_first_seeding_sifts_named_vars_before_others(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        # Seeding with unknown names is ignored; known names are honored.
        manager.sift([f], first=("y1", "nope"))
        assert manager.node_count(f) == 6
        assert manager.satcount(f, BAD_ORDER) == 37

    def test_usable_after_sift(self):
        manager = BDDManager(ordering=BAD_ORDER)
        f = pairs_function(manager)
        manager.sift([f])
        # Caches were cleared; fresh applies must still be sound.
        g = manager.and_(f, manager.var("x1"))
        assert manager.entails(g, f)
        assert manager.satcount(g, BAD_ORDER) == 23


class TestReorderPolicy:
    def test_policies_constant(self):
        assert REORDER_POLICIES == ("off", "sift")
        assert BddConstraintSystem.REORDER_POLICIES is REORDER_POLICIES

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown reorder policy"):
            BddConstraintSystem(reorder="bogus")

    def test_off_by_default_never_reorders(self):
        system = BddConstraintSystem()
        for i in range(40):
            system.parse(f"A{i} & (B{i} | !C{i})")
        assert system.solver_stats()["reorders"] == 0

    def test_sift_triggers_and_doubles_threshold(self):
        system = BddConstraintSystem(reorder="sift", reorder_threshold=8)
        constraints = [
            system.parse(f"(x{i} & y{i}) | (y{i} & z{i})")
            for i in range(12)
        ]
        stats = system.solver_stats()
        assert stats["reorders"] >= 1
        # Interned handles survive the reorder semantically intact.
        for i, constraint in enumerate(constraints):
            assert constraint.satisfied_by(
                {f"x{i}": True, f"y{i}": True, f"z{i}": False}
            )
            assert not constraint.satisfied_by(
                {f"x{i}": True, f"y{i}": False, f"z{i}": True}
            )

    def test_configure_reorder_after_construction(self):
        system = BddConstraintSystem()
        system.configure_reorder("sift", first=("F",), threshold=4)
        system.parse("F & G & H & I & J")
        assert system.solver_stats()["reorders"] >= 1
