"""Regression tests for unified apply-cache accounting.

Historically the `and_`/`or_`/`xor` wrappers probed the cache with their
own tuple key before entering the kernel, and a wrapper-level hit was
never reflected in the miss denominator — `bdd.apply_hit_ratio`
overstated misses.  The rewritten core has exactly one probe site per
operand pair, and every probe ticks exactly one of
``apply_cache_hits``/``apply_cache_misses`` wherever it happens
(top-level fast path or in-kernel).
"""

import pytest

import repro.bdd.manager as manager_mod
from repro.bdd import BDDManager


def counters(mgr):
    stats = mgr.cache_stats()
    return (
        stats["apply_calls"],
        stats["apply_cache_hits"],
        stats["apply_cache_misses"],
    )


class TestUnifiedAccounting:
    def test_pinned_totals_on_known_workload(self):
        """Exact counter values for a fixed 4-variable workload.

        The second round repeats the same three top-level operations; each
        must count as one call and one *hit* (previously these wrapper
        hits bypassed the counters entirely).
        """
        mgr = BDDManager()
        a, b, c, d = (mgr.var(n) for n in "abcd")
        f = mgr.and_(a, b)
        g = mgr.or_(c, d)
        h = mgr.xor(f, g)
        assert counters(mgr) == (3, 0, 6)
        assert (mgr.and_(a, b), mgr.or_(c, d), mgr.xor(f, g)) == (f, g, h)
        assert counters(mgr) == (6, 3, 6)

    def test_terminal_shortcuts_do_not_count(self):
        mgr = BDDManager()
        x = mgr.var("x")
        mgr.and_(x, mgr.true)
        mgr.and_(x, mgr.false)
        mgr.or_(x, x)
        mgr.xor(x, x)
        assert counters(mgr) == (0, 0, 0)

    def test_hits_plus_misses_cover_every_probe(self):
        """hits + misses never goes backwards relative to calls.

        Every non-trivial call makes at least one probe, so the probe
        total must grow at least as fast as the call total.
        """
        mgr = BDDManager()
        xs = [mgr.var(f"x{i}") for i in range(8)]
        f = mgr.true
        for i in range(8):
            f = mgr.and_(f, mgr.or_(xs[i], xs[(i + 1) % 8]))
        calls, hits, misses = counters(mgr)
        assert calls > 0
        assert hits + misses >= calls

    def test_balanced_reduction_uses_same_counters(self):
        mgr = BDDManager()
        xs = [mgr.var(f"x{i}") for i in range(16)]
        mgr.and_all(xs)
        calls, hits, misses = counters(mgr)
        assert calls == 15  # n-1 pairwise applies, balanced or not
        assert hits + misses >= calls
        # Re-reducing replays the same pairs: all top-level hits.
        mgr.and_all(xs)
        calls2, hits2, misses2 = counters(mgr)
        assert calls2 == 30
        assert misses2 == misses
        assert hits2 == hits + 15

    def test_hit_ratio_denominator_consistency(self):
        """The published ratio uses hits/(hits+misses); both sides of a
        repeat-heavy workload must move the same counters."""
        mgr = BDDManager()
        xs = [mgr.var(f"x{i}") for i in range(6)]
        f = mgr.or_all(mgr.and_(xs[i], xs[(i + 1) % 6]) for i in range(6))
        _, hits_before, misses_before = counters(mgr)
        for _ in range(10):
            mgr.or_all(mgr.and_(xs[i], xs[(i + 1) % 6]) for i in range(6))
        _, hits_after, misses_after = counters(mgr)
        assert misses_after == misses_before  # replay is all hits
        assert hits_after > hits_before

    def test_cache_flush_keeps_results_and_counts(self, monkeypatch):
        """A computed-table flush (soft capacity) is lossy but sound."""
        monkeypatch.setattr(manager_mod, "_CACHE_CAPACITY", 8)
        mgr = BDDManager()
        xs = [mgr.var(f"x{i}") for i in range(10)]
        f = mgr.or_all(mgr.and_(xs[i], xs[(i + 1) % 10]) for i in range(10))
        stats = mgr.cache_stats()
        assert stats["apply_cache_flushes"] >= 1
        ref = BDDManager()
        ys = [ref.var(f"x{i}") for i in range(10)]
        g = ref.or_all(ref.and_(ys[i], ys[(i + 1) % 10]) for i in range(10))
        assert mgr.to_expr_string(f) == ref.to_expr_string(g)

    def test_occupancy_and_load_factor_gauges(self):
        mgr = BDDManager()
        stats = mgr.cache_stats()
        assert stats["unique_load_factor"] == 0.0
        assert stats["apply_cache_occupancy"] == 0.0
        xs = [mgr.var(f"x{i}") for i in range(6)]
        mgr.or_all(mgr.and_(xs[i], xs[(i + 1) % 6]) for i in range(6))
        stats = mgr.cache_stats()
        assert 0.0 < stats["unique_load_factor"] <= 1.0
        assert 0.0 < stats["apply_cache_occupancy"] <= 1.0
        assert stats["apply_cache_occupancy"] == pytest.approx(
            stats["apply_cache"] / (3 * manager_mod._CACHE_CAPACITY)
        )
