"""Tests for scripts/compare_metrics.py (the counter-drift CI gate)."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "compare_metrics.py"


def snapshot(path: Path, counters=None, gauges=None, histograms=None):
    path.write_text(
        json.dumps(
            {
                "schema": "spllift-metrics/v1",
                "metrics": {
                    "counters": counters or {},
                    "gauges": gauges or {},
                    "histograms": histograms or {},
                },
            }
        )
    )
    return path


def run(*argv):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, argv)],
        capture_output=True,
        text=True,
    )


class TestCompareMetrics:
    def test_identical_snapshots_pass(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={"ide.jumps": 100})
        cur = snapshot(tmp_path / "b.json", counters={"ide.jumps": 100})
        result = run(base, cur)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_injected_drift_fails(self, tmp_path):
        """The CI self-test: a 50% counter blowup must exit nonzero."""
        base = snapshot(
            tmp_path / "a.json",
            counters={"ide.jumps": 1000, "bdd.apply_cache_misses": 400},
        )
        cur = snapshot(
            tmp_path / "b.json",
            counters={"ide.jumps": 1500, "bdd.apply_cache_misses": 400},
        )
        result = run(base, cur, "--threshold", "0.1")
        assert result.returncode == 1
        assert "ide.jumps" in result.stdout
        assert "DRIFT" in result.stdout

    def test_drift_within_threshold_passes(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={"ide.jumps": 1000})
        cur = snapshot(tmp_path / "b.json", counters={"ide.jumps": 1049})
        assert run(base, cur, "--threshold", "0.05").returncode == 0

    def test_large_drop_also_fails(self, tmp_path):
        """A silent work drop is as suspicious as a blowup."""
        base = snapshot(tmp_path / "a.json", counters={"ide.jumps": 1000})
        cur = snapshot(tmp_path / "b.json", counters={"ide.jumps": 100})
        assert run(base, cur).returncode == 1

    def test_per_counter_threshold_override(self, tmp_path):
        base = snapshot(
            tmp_path / "a.json",
            counters={"bdd.apply_calls": 100, "ide.jumps": 100},
        )
        cur = snapshot(
            tmp_path / "b.json",
            counters={"bdd.apply_calls": 140, "ide.jumps": 100},
        )
        # 40% over a 10% default fails...
        assert run(base, cur).returncode == 1
        # ...but a bdd.* override admits it without loosening ide.jumps.
        result = run(base, cur, "--threshold-for", "bdd.*=0.5")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_most_specific_override_wins(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={"bdd.apply_calls": 100})
        cur = snapshot(tmp_path / "b.json", counters={"bdd.apply_calls": 140})
        result = run(
            base,
            cur,
            "--threshold-for",
            "bdd.*=0.5",
            "--threshold-for",
            "bdd.apply_calls=0.1",
        )
        assert result.returncode == 1

    def test_missing_key_fails_unless_allowed(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={"ide.jumps": 10})
        cur = snapshot(tmp_path / "b.json", counters={})
        assert run(base, cur).returncode == 1
        assert run(base, cur, "--allow-missing").returncode == 0

    def test_missing_key_named_in_diff(self, tmp_path):
        """A one-sided counter must be named, not skipped or crashed on."""
        base = snapshot(
            tmp_path / "a.json",
            counters={"ide.jumps": 10, "datalog.rules_fired": 7},
        )
        cur = snapshot(tmp_path / "b.json", counters={"ide.jumps": 10})
        result = run(base, cur)
        assert result.returncode == 1
        assert "datalog.rules_fired: missing from current" in result.stdout
        assert "MISSING" in result.stdout
        assert "1 missing" in result.stdout

    def test_missing_key_printed_under_quiet(self, tmp_path):
        """--quiet must still surface what failed the gate."""
        base = snapshot(tmp_path / "a.json", counters={"datalog.iterations": 3})
        cur = snapshot(tmp_path / "b.json", counters={})
        result = run(base, cur, "--quiet")
        assert result.returncode == 1
        assert "datalog.iterations: missing from current" in result.stdout

    def test_missing_from_baseline_also_reported(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={})
        cur = snapshot(tmp_path / "b.json", counters={"datalog.strata": 1})
        result = run(base, cur)
        assert result.returncode == 1
        assert "datalog.strata: missing from baseline" in result.stdout

    def test_allow_missing_not_marked_as_violation(self, tmp_path):
        base = snapshot(tmp_path / "a.json", counters={"ide.jumps": 10})
        cur = snapshot(tmp_path / "b.json", counters={})
        result = run(base, cur, "--allow-missing")
        assert result.returncode == 0
        assert "OK" in result.stdout
        assert "MISSING" not in result.stdout  # reported, not flagged

    def test_only_and_ignore_filters(self, tmp_path):
        base = snapshot(
            tmp_path / "a.json",
            counters={"ide.jumps": 100, "noise.value": 1},
        )
        cur = snapshot(
            tmp_path / "b.json",
            counters={"ide.jumps": 100, "noise.value": 99},
        )
        assert run(base, cur).returncode == 1
        assert run(base, cur, "--only", "ide.*").returncode == 0
        assert run(base, cur, "--ignore", "noise.*").returncode == 0

    def test_gauges_and_histograms_compared(self, tmp_path):
        base = snapshot(
            tmp_path / "a.json",
            gauges={"bdd.unique_load_factor": 0.5},
            histograms={"span.solve": {"count": 4, "mean": 1.0}},
        )
        cur = snapshot(
            tmp_path / "b.json",
            gauges={"bdd.unique_load_factor": 0.95},
            histograms={"span.solve": {"count": 4, "mean": 2.0}},
        )
        result = run(base, cur)
        assert result.returncode == 1
        assert "bdd.unique_load_factor" in result.stdout
        # Histogram means are derived, not gated; counts are.
        assert "span.solve.count" in result.stdout

    def test_malformed_input_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = snapshot(tmp_path / "good.json", counters={})
        assert run(bad, good).returncode == 2

    def test_real_snapshot_roundtrip(self, tmp_path):
        """A snapshot produced by the live registry gates against itself."""
        sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.obs.metrics import MetricsRegistry
        finally:
            sys.path.pop(0)
        registry = MetricsRegistry()
        registry.inc("ide.jumps", 42)
        registry.gauge("bdd.unique_load_factor", 0.25)
        registry.observe("solve.seconds", 1.5)
        document = {
            "schema": "spllift-metrics/v1",
            "metrics": registry.describe(),
        }
        path = tmp_path / "live.json"
        path.write_text(json.dumps(document))
        assert run(path, path).returncode == 0
