"""Tests for the iteration-order variance experiment."""

import pytest

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.experiments.variance import render_variance, run_variance
from repro.ide import IDESolver
from repro.ide.binary import ifds_as_ide
from repro.ifds import IFDSSolver
from repro.spl import device_spl, figure1


class TestWorklistOrders:
    def test_invalid_order_rejected(self):
        problem = ifds_as_ide(TaintAnalysis(figure1().icfg))
        with pytest.raises(ValueError):
            IDESolver(problem, worklist_order="sideways")

    @pytest.mark.parametrize("order", ["fifo", "lifo", "random"])
    def test_orders_reach_same_fixed_point(self, order):
        product_line = figure1()
        problem = TaintAnalysis(product_line.icfg)
        reference = IFDSSolver(problem).solve()
        ide_results = IDESolver(
            ifds_as_ide(problem), worklist_order=order, order_seed=7
        ).solve()
        for stmt in product_line.icfg.reachable_instructions():
            assert reference.at(stmt) == frozenset(ide_results.results_at(stmt))

    def test_random_orders_deterministic_per_seed(self):
        product_line = figure1()
        problem = ifds_as_ide(TaintAnalysis(product_line.icfg))
        first = IDESolver(problem, worklist_order="random", order_seed=3)
        first.solve()
        second = IDESolver(problem, worklist_order="random", order_seed=3)
        second.solve()
        assert first.stats == second.stats


class TestVarianceReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_variance(
            device_spl(), UninitializedVariablesAnalysis, random_orders=5
        )

    def test_results_identical_across_orders(self, report):
        """The solver's fixed point is order-independent — the paper's
        premise ("IDE computes the same result independently of iteration
        order")."""
        assert report.results_identical

    def test_work_varies(self, report):
        """...but the amount of work may differ ("some orders may compute
        the result faster, computing fewer flow functions")."""
        assert report.work_spread >= 1.0
        assert len(report.runs) == 7  # fifo + lifo + 5 random

    def test_render(self, report):
        text = render_variance([report])
        assert "variance" in text.lower()
        assert "yes" in text


class TestScaling:
    def test_scaling_curve(self):
        from repro.analyses import UninitializedVariablesAnalysis
        from repro.experiments.scaling import render_scaling, run_scaling

        points = run_scaling(
            UninitializedVariablesAnalysis, feature_counts=(2, 4, 6)
        )
        assert [p.features for p in points] == [2, 4, 6]
        assert [p.valid_configurations for p in points] == [4, 16, 64]
        # A2's total grows with the configuration count; SPLLIFT does not
        # grow anywhere near proportionally.
        assert points[-1].a2_total_seconds > points[0].a2_total_seconds
        text = render_scaling(points)
        assert "speedup" in text
