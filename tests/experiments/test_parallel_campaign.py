"""Parallel campaign runs must be indistinguishable from sequential ones
(modulo wall-clock): same stored result digests, same table structure,
same A2 accounting."""

from repro.analyses import (
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.experiments.harness import run_a2_campaign
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.service import ResultStore
from repro.spl.examples import device_spl, figure1_with_model

SUBJECTS = [("fig1fm", figure1_with_model), ("device", device_spl)]
ANALYSES = [
    ("Uninitialized Variables", UninitializedVariablesAnalysis),
    ("Reaching Definitions", ReachingDefinitionsAnalysis),
]


def _digests(store):
    return sorted(record["result_digest"] for record in store.iter_records())


class TestCampaignParallelism:
    def test_a2_campaign_accounting_matches_sequential(self):
        sequential = run_a2_campaign(
            device_spl(), UninitializedVariablesAnalysis, cutoff_seconds=60.0
        )
        parallel = run_a2_campaign(
            device_spl(),
            UninitializedVariablesAnalysis,
            cutoff_seconds=60.0,
            parallel=3,
        )
        assert parallel.configurations_run == sequential.configurations_run
        assert parallel.valid_configurations == sequential.valid_configurations
        assert parallel.estimated == sequential.estimated

    def test_table2_store_digests_match_sequential(self, tmp_path):
        seq_store = ResultStore(tmp_path / "seq")
        par_store = ResultStore(tmp_path / "par")
        seq_rows = run_table2(
            SUBJECTS, ANALYSES, cutoff_seconds=30.0, store=seq_store
        )
        par_rows = run_table2(
            SUBJECTS, ANALYSES, cutoff_seconds=30.0, store=par_store, parallel=3
        )
        assert _digests(seq_store) == _digests(par_store)
        assert [row.benchmark for row in par_rows] == [
            row.benchmark for row in seq_rows
        ]
        assert [cell.analysis for row in par_rows for cell in row.cells] == [
            cell.analysis for row in seq_rows for cell in row.cells
        ]

    def test_table2_parallel_serves_warm_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_table2(
            SUBJECTS, ANALYSES, cutoff_seconds=30.0, store=store, parallel=3
        )
        records_after_cold = store.stats()["records"]
        warm = run_table2(
            SUBJECTS, ANALYSES, cutoff_seconds=30.0, store=store, parallel=3
        )
        assert store.stats()["records"] == records_after_cold
        for cold_row, warm_row in zip(cold, warm):
            for cold_cell, warm_cell in zip(cold_row.cells, warm_row.cells):
                # Warm cells report the recorded (rounded) cold timing.
                assert (
                    abs(warm_cell.spllift_seconds - cold_cell.spllift_seconds)
                    < 1e-5
                )

    def test_table3_store_digests_match_sequential(self, tmp_path):
        seq_store = ResultStore(tmp_path / "seq")
        par_store = ResultStore(tmp_path / "par")
        run_table3(SUBJECTS, ANALYSES, store=seq_store)
        run_table3(SUBJECTS, ANALYSES, store=par_store, parallel=3)
        digests = _digests(par_store)
        assert digests == _digests(seq_store)
        # Both fm_mode=edge and fm_mode=ignore records per cell.
        assert len(digests) == len(SUBJECTS) * len(ANALYSES) * 2
