"""Tests for duration formatting and table rendering."""

import pytest

from repro.utils import format_count, format_duration, format_estimate, render_table


class TestFormatDuration:
    def test_sub_second(self):
        assert format_duration(0.5) == "0.50s"

    def test_seconds(self):
        assert format_duration(42) == "42s"

    def test_minutes(self):
        assert format_duration(126) == "2m06s"

    def test_hours(self):
        # the paper's 9h03m39s renders as 9h04m at our granularity
        assert format_duration(9 * 3600 + 3 * 60 + 39) == "9h04m"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestFormatEstimate:
    def test_days(self):
        assert format_estimate(3 * 86400.0) == "≈3 days"

    def test_years(self):
        text = format_estimate(2.5 * 365 * 86400.0)
        assert text.startswith("≈") and "years" in text

    def test_below_a_day(self):
        assert format_estimate(3600.0).startswith("≈")


class TestFormatCount:
    def test_small(self):
        assert format_count(1872) == "1,872"

    def test_large_scientific(self):
        text = format_count(55 * 10**10)
        assert "10^" in text

    def test_paper_berkeleydb_number(self):
        assert format_count(550_000_000_000) == "55·10^10"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ("A", "Long header"),
            [("x", "1"), ("longer", "2")],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("A",), [("x", "y")])

    def test_empty_rows(self):
        text = render_table(("A", "B"), [])
        assert "A" in text
