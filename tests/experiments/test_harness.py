"""Tests for the experiment harness (protocol mechanics, not timings)."""

import pytest

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.experiments.harness import (
    measure_call_graph,
    run_a2_campaign,
    run_spllift,
)
from repro.spl import device_spl, figure1


class TestRunSPLLift:
    def test_returns_time_and_results(self):
        seconds, results = run_spllift(figure1(), TaintAnalysis)
        assert seconds > 0
        assert results.stats["jump_functions"] > 0

    def test_fm_modes(self):
        product_line = device_spl()
        for fm_mode in ("edge", "seed", "ignore"):
            seconds, results = run_spllift(
                product_line, UninitializedVariablesAnalysis, fm_mode=fm_mode
            )
            assert seconds > 0


class TestA2Campaign:
    def test_full_enumeration(self):
        campaign = run_a2_campaign(figure1(), TaintAnalysis, cutoff_seconds=120)
        assert not campaign.estimated
        assert campaign.configurations_run == campaign.valid_configurations == 8
        assert campaign.total_seconds == campaign.measured_seconds > 0

    def test_cutoff_triggers_estimation(self):
        campaign = run_a2_campaign(figure1(), TaintAnalysis, cutoff_seconds=0.0)
        assert campaign.estimated
        assert campaign.configurations_run < campaign.valid_configurations
        assert campaign.estimated_total_seconds > 0
        # Estimate follows the paper: anchor average × #valid configs.
        assert campaign.estimated_total_seconds == pytest.approx(
            campaign.per_configuration_seconds * campaign.valid_configurations
        )

    def test_stats_recorded(self):
        campaign = run_a2_campaign(figure1(), TaintAnalysis, cutoff_seconds=120)
        assert campaign.stats_full["path_edges"] > 0


class TestCallGraphTiming:
    def test_measures_fresh_build(self):
        assert measure_call_graph(figure1()) > 0
