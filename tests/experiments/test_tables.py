"""Smoke tests for the table generators, on tiny subjects."""

import pytest

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.experiments import (
    correlation,
    render_qualitative,
    render_table1,
    render_table2,
    render_table3,
    run_qualitative,
    run_table1,
    run_table2,
    run_table3,
)
from repro.spl import device_spl, figure1

TINY_SUBJECTS = (("figure1", figure1), ("device", device_spl))
TINY_ANALYSES = (
    ("Taint", TaintAnalysis),
    ("Uninitialized Variables", UninitializedVariablesAnalysis),
)


class TestTable1:
    def test_rows(self):
        rows = run_table1(TINY_SUBJECTS)
        assert [r.benchmark for r in rows] == ["figure1", "device"]
        fig1 = rows[0]
        assert fig1.features_reachable == 3
        assert fig1.configurations_reachable == 8
        assert fig1.configurations_valid == 8

    def test_render(self):
        text = render_table1(run_table1(TINY_SUBJECTS))
        assert "Table 1" in text
        assert "figure1" in text
        assert "KLOC" in text


class TestTable2:
    def test_rows(self):
        rows = run_table2(TINY_SUBJECTS, TINY_ANALYSES, cutoff_seconds=30)
        assert len(rows) == 2
        for row in rows:
            assert len(row.cells) == 2
            for cell in row.cells:
                assert cell.spllift_seconds > 0
                assert cell.a2.total_seconds > 0
                assert not cell.a2.estimated  # tiny subjects finish

    def test_speedup_defined(self):
        rows = run_table2(TINY_SUBJECTS, TINY_ANALYSES, cutoff_seconds=30)
        for row in rows:
            for cell in row.cells:
                assert cell.speedup > 0

    def test_render(self):
        rows = run_table2(TINY_SUBJECTS, TINY_ANALYSES, cutoff_seconds=30)
        text = render_table2(rows)
        assert "Table 2" in text


class TestTable3:
    def test_rows_and_render(self):
        rows = run_table3(TINY_SUBJECTS, TINY_ANALYSES)
        assert len(rows) == 2
        for row in rows:
            for cell in row.cells:
                assert cell.regarded_seconds > 0
                assert cell.ignored_seconds > 0
                assert cell.a2_average_seconds > 0
        assert "Table 3" in render_table3(rows)


class TestQualitative:
    def test_rows_and_render(self):
        rows = run_qualitative(TINY_SUBJECTS, TINY_ANALYSES)
        assert len(rows) == 4
        for row in rows:
            assert row.spllift_edges > 0
            assert row.a2_full_edges > 0
        assert "correlation" in render_qualitative(rows).lower()

    def test_correlation_function(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
        assert correlation([1, 1, 1], [1, 2, 3]) == 0.0
        with pytest.raises(ValueError):
            correlation([1], [1])


class TestCLI:
    def test_main_table1(self, capsys):
        import repro.experiments.__main__ as cli
        from repro.experiments import table1 as t1

        # run against the tiny subjects by monkey-patching the default
        original = t1.run_table1
        try:
            t1_rows = original(TINY_SUBJECTS)
            assert t1_rows
        finally:
            pass
        assert cli.main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
