"""Tests for the feature-model structure and its direct semantics."""

import pytest

from repro.constraints.formula import parse_formula
from repro.featuremodel import Feature, FeatureModel, FeatureModelError


def simple_model() -> FeatureModel:
    root = Feature("App")
    root.add_mandatory(Feature("Core"))
    root.add_optional(Feature("Logging"))
    root.add_group("xor", [Feature("Small"), Feature("Large")])
    return FeatureModel(root=root, name="simple")


class TestStructure:
    def test_feature_names_preorder(self):
        model = simple_model()
        assert model.feature_names == ("App", "Core", "Logging", "Small", "Large")

    def test_lookup(self):
        model = simple_model()
        assert model.feature("Core").name == "Core"
        assert "Logging" in model
        assert "Nope" not in model

    def test_unknown_feature_raises(self):
        with pytest.raises(FeatureModelError):
            simple_model().feature("Nope")

    def test_duplicate_names_rejected(self):
        root = Feature("A")
        root.add_optional(Feature("A"))
        with pytest.raises(FeatureModelError):
            FeatureModel(root=root)

    def test_empty_group_rejected(self):
        with pytest.raises(FeatureModelError):
            Feature("A").add_group("or", [])

    def test_bad_group_kind_rejected(self):
        with pytest.raises(FeatureModelError):
            Feature("A").add_group("nand", [Feature("B")])

    def test_empty_model(self):
        model = FeatureModel()
        assert model.feature_names == ()
        assert model.is_valid(set())
        assert model.is_valid({"anything"})


class TestDirectSemantics:
    def test_root_required(self):
        model = simple_model()
        assert not model.is_valid({"Core", "Small"})

    def test_mandatory_child(self):
        model = simple_model()
        assert not model.is_valid({"App", "Small"})  # missing Core
        assert model.is_valid({"App", "Core", "Small"})

    def test_child_requires_parent(self):
        root = Feature("A")
        optional = Feature("B")
        root.add_optional(optional)
        nested = Feature("C")
        optional.add_optional(nested)
        model = FeatureModel(root=root)
        assert not model.is_valid({"A", "C"})  # C without B
        assert model.is_valid({"A", "B", "C"})

    def test_xor_exactly_one(self):
        model = simple_model()
        base = {"App", "Core"}
        assert not model.is_valid(base)  # zero of the group
        assert model.is_valid(base | {"Small"})
        assert model.is_valid(base | {"Large"})
        assert not model.is_valid(base | {"Small", "Large"})

    def test_or_at_least_one(self):
        root = Feature("A")
        root.add_group("or", [Feature("X"), Feature("Y")])
        model = FeatureModel(root=root)
        assert not model.is_valid({"A"})
        assert model.is_valid({"A", "X"})
        assert model.is_valid({"A", "X", "Y"})

    def test_group_member_requires_parent(self):
        root = Feature("A")
        sub = Feature("B")
        root.add_optional(sub)
        sub.add_group("xor", [Feature("X"), Feature("Y")])
        model = FeatureModel(root=root)
        assert not model.is_valid({"A", "X"})  # X without B
        assert model.is_valid({"A", "B", "X"})
        # With B disabled the group is simply not active.
        assert model.is_valid({"A"})

    def test_cross_tree_constraint(self):
        root = Feature("A")
        root.add_optional(Feature("B"))
        root.add_optional(Feature("C"))
        model = FeatureModel(root=root, cross_tree=[parse_formula("B -> C")])
        assert model.is_valid({"A", "C"})
        assert model.is_valid({"A", "B", "C"})
        assert not model.is_valid({"A", "B"})
