"""Batory translation vs. the direct tree semantics (Section 4.1).

The translation and :meth:`FeatureModel.is_valid` are implemented
independently, so exhaustive comparison over all assignments is a strong
correctness check — including on randomly generated feature trees.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.formula import parse_formula
from repro.featuremodel import Feature, FeatureModel, to_formula


def assignments(names):
    for bits in itertools.product((False, True), repeat=len(names)):
        yield dict(zip(names, bits))


def assert_translation_matches(model: FeatureModel):
    formula = to_formula(model)
    names = model.feature_names
    extra = sorted(set().union(*(c.variables() for c in model.cross_tree))- set(names)) if model.cross_tree else []
    all_names = list(names) + list(extra)
    for assignment in assignments(all_names):
        assert formula.evaluate(assignment) == model.is_valid(assignment), (
            assignment,
            str(formula),
        )


class TestTranslationUnit:
    def test_empty_model_is_true(self):
        assert to_formula(FeatureModel()).evaluate({}) is True

    def test_root_only(self):
        model = FeatureModel(root=Feature("A"))
        assert_translation_matches(model)

    def test_mandatory(self):
        root = Feature("A")
        root.add_mandatory(Feature("B"))
        assert_translation_matches(FeatureModel(root=root))

    def test_optional(self):
        root = Feature("A")
        root.add_optional(Feature("B"))
        assert_translation_matches(FeatureModel(root=root))

    def test_or_group(self):
        root = Feature("A")
        root.add_group("or", [Feature("X"), Feature("Y"), Feature("Z")])
        assert_translation_matches(FeatureModel(root=root))

    def test_xor_group(self):
        root = Feature("A")
        root.add_group("xor", [Feature("X"), Feature("Y"), Feature("Z")])
        assert_translation_matches(FeatureModel(root=root))

    def test_singleton_groups(self):
        root = Feature("A")
        root.add_group("or", [Feature("X")])
        root.add_group("xor", [Feature("Y")])
        assert_translation_matches(FeatureModel(root=root))

    def test_nested_tree(self):
        root = Feature("A")
        sub = Feature("B")
        root.add_optional(sub)
        sub.add_mandatory(Feature("C"))
        sub.add_group("xor", [Feature("X"), Feature("Y")])
        assert_translation_matches(FeatureModel(root=root))

    def test_cross_tree(self):
        root = Feature("A")
        root.add_optional(Feature("B"))
        root.add_optional(Feature("C"))
        model = FeatureModel(
            root=root, cross_tree=[parse_formula("B -> C"), parse_formula("!(B && C) || A")]
        )
        assert_translation_matches(model)

    def test_deep_group_members_with_children(self):
        root = Feature("A")
        member = Feature("X")
        member.add_optional(Feature("X1"))
        root.add_group("or", [member, Feature("Y")])
        assert_translation_matches(FeatureModel(root=root))


def random_model(seed: int, max_features: int = 7) -> FeatureModel:
    rng = random.Random(seed)
    root = Feature("f0")
    frontier = [root]
    total = rng.randint(1, max_features)
    created = 1
    while created < total and frontier:
        parent = rng.choice(frontier)
        kind = rng.random()
        if kind < 0.35:
            child = Feature(f"f{created}")
            created += 1
            parent.add_mandatory(child)
            frontier.append(child)
        elif kind < 0.7:
            child = Feature(f"f{created}")
            created += 1
            parent.add_optional(child)
            frontier.append(child)
        else:
            size = min(rng.randint(2, 3), total - created)
            if size < 1:
                continue
            members = []
            for _ in range(size):
                member = Feature(f"f{created}")
                created += 1
                members.append(member)
                frontier.append(member)
            parent.add_group(rng.choice(("or", "xor")), members)
    return FeatureModel(root=root)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=80, deadline=None)
def test_translation_matches_semantics_on_random_trees(seed):
    assert_translation_matches(random_model(seed))
