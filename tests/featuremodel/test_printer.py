"""Round-trip tests for the feature-model printer."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.featuremodel import (
    FeatureModel,
    parse_feature_model,
    render_feature_model,
)
from repro.featuremodel.parser import parse_feature_model as parse
from tests.featuremodel.test_batory import random_model


def same_semantics(a: FeatureModel, b: FeatureModel) -> bool:
    """Compare models via BDD equivalence of their Batory formulas
    (brute force would be 2^44 assignments for the benchmark models)."""
    from repro.bdd import BDDManager
    from repro.featuremodel import to_formula

    if a.feature_names != b.feature_names:
        return False
    manager = BDDManager()
    return to_formula(a).to_bdd(manager) == to_formula(b).to_bdd(manager)


class TestRoundTrip:
    def test_simple(self):
        model = parse(
            """
            featuremodel demo
            root App {
                mandatory Core
                optional Logging
                xor { S L }
            }
            constraint Logging -> L;
            """
        )
        rendered = render_feature_model(model)
        assert same_semantics(model, parse(rendered))

    def test_nested_groups(self):
        model = parse(
            """
            root A {
                or { X { optional X1 } Y }
                optional B { mandatory C }
            }
            """
        )
        assert same_semantics(model, parse(render_feature_model(model)))

    def test_name_preserved(self):
        model = parse("featuremodel fancy root R")
        assert parse(render_feature_model(model)).name == "fancy"

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            render_feature_model(FeatureModel())

    def test_benchmark_models_round_trip(self):
        from repro.spl.benchmarks import paper_subjects

        for _, builder in paper_subjects():
            model = builder().feature_model
            assert same_semantics(model, parse(render_feature_model(model)))

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_random_models_round_trip(self, seed):
        model = random_model(seed)
        assert same_semantics(model, parse(render_feature_model(model)))
