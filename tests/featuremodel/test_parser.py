"""Tests for the textual feature-model format."""

import pytest

from repro.constraints.formula import Implies, Var
from repro.featuremodel import FeatureModelError, parse_feature_model


class TestParser:
    def test_minimal(self):
        model = parse_feature_model("root A")
        assert model.feature_names == ("A",)

    def test_named_model(self):
        model = parse_feature_model("featuremodel demo root A")
        assert model.name == "demo"

    def test_children_kinds(self):
        model = parse_feature_model(
            """
            root App {
                mandatory Core
                optional Logging
            }
            """
        )
        root = model.root
        assert [(c.name, optional) for c, optional in root.children] == [
            ("Core", False),
            ("Logging", True),
        ]

    def test_groups(self):
        model = parse_feature_model(
            """
            root App {
                or { A B }
                xor { X Y Z }
            }
            """
        )
        groups = model.root.groups
        assert groups[0].kind == "or"
        assert [m.name for m in groups[0].members] == ["A", "B"]
        assert groups[1].kind == "xor"
        assert len(groups[1].members) == 3

    def test_nesting(self):
        model = parse_feature_model(
            """
            root App {
                optional Sub {
                    mandatory Inner
                    xor { L R }
                }
            }
            """
        )
        assert model.feature_names == ("App", "Sub", "Inner", "L", "R")

    def test_constraints(self):
        model = parse_feature_model(
            """
            root App { optional A optional B }
            constraint A -> B;
            """
        )
        assert model.cross_tree == [Implies(Var("A"), Var("B"))]

    def test_multiple_constraints(self):
        model = parse_feature_model(
            """
            root App { optional A optional B optional C }
            constraint A -> B;
            constraint !(B && C);
            """
        )
        assert len(model.cross_tree) == 2

    def test_comments(self):
        model = parse_feature_model(
            """
            // a comment
            root App { optional A }  // trailing
            """
        )
        assert model.feature_names == ("App", "A")

    def test_semantics_of_parsed_model(self):
        model = parse_feature_model(
            """
            root App {
                mandatory Core
                xor { S L }
            }
            constraint S -> Core;
            """
        )
        assert model.is_valid({"App", "Core", "S"})
        assert not model.is_valid({"App", "Core", "S", "L"})
        assert not model.is_valid({"App", "S"})

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "root",
            "root A { mandatory }",
            "root A { weird B }",
            "root A { or { } }",
            "root A constraint A -> ;",
            "root A constraint A -> B",  # missing semicolon
            "root A trailing",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(FeatureModelError):
            parse_feature_model(bad)
