"""Valid-configuration counting and enumeration vs. brute force."""

import itertools

from repro.constraints import BddConstraintSystem
from repro.featuremodel import (
    Feature,
    FeatureModel,
    count_valid_configurations,
    iter_valid_configurations,
    model_constraint,
    parse_feature_model,
    project_onto,
)


def brute_force_valid(model):
    names = model.feature_names
    for bits in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, bits))
        if model.is_valid(assignment):
            yield frozenset(n for n, v in assignment.items() if v)


def demo_model():
    return parse_feature_model(
        """
        root App {
            mandatory Core
            optional Logging
            xor { Small Large }
        }
        constraint Logging -> Large;
        """
    )


class TestCounting:
    def test_count_matches_brute_force(self):
        model = demo_model()
        expected = len(list(brute_force_valid(model)))
        assert count_valid_configurations(model) == expected == 3

    def test_enumeration_matches_brute_force(self):
        model = demo_model()
        assert set(iter_valid_configurations(model)) == set(
            brute_force_valid(model)
        )

    def test_every_enumerated_configuration_is_valid(self):
        model = demo_model()
        for config in iter_valid_configurations(model):
            assert model.is_valid(config)

    def test_empty_model_counts_everything(self):
        assert count_valid_configurations(FeatureModel()) == 1  # no features

    def test_count_over_subset(self):
        model = demo_model()
        # Projection onto {Logging}: both values are extendable.
        assert count_valid_configurations(model, over=["Logging"]) == 2

    def test_projection(self):
        model = demo_model()
        system = BddConstraintSystem()
        constraint = model_constraint(model, system)
        projected = project_onto(constraint, ["Small", "Large"])
        # exactly-one still holds after projection
        assert projected.model_count(["Small", "Large"]) == 2

    def test_projection_drops_unlisted_vars(self):
        model = demo_model()
        system = BddConstraintSystem()
        constraint = model_constraint(model, system)
        projected = project_onto(constraint, ["Logging"])
        support = system.manager.support(projected.node)
        assert support <= {"Logging"}

    def test_enumeration_over_subset_deduplicates(self):
        model = demo_model()
        configs = list(iter_valid_configurations(model, over=["Logging"]))
        assert sorted(configs, key=sorted) == [frozenset(), frozenset({"Logging"})]

    def test_deterministic_enumeration(self):
        model = demo_model()
        assert list(iter_valid_configurations(model)) == list(
            iter_valid_configurations(model)
        )

    def test_larger_model_count(self):
        root = Feature("R")
        root.add_group("or", [Feature(f"O{i}") for i in range(4)])
        model = FeatureModel(root=root)
        # The root is always part of a product, so the or-group must have
        # at least one member: 2^4 - 1 combinations.
        assert count_valid_configurations(model) == 15
