"""Tests for the IFDS tabulation solver, including context sensitivity."""

import pytest

from repro.analyses import LocalFact, TaintAnalysis
from repro.ifds import IFDSSolver
from repro.ir import ICFG, Print, lower_program
from repro.minijava import derive_product, parse_program
from repro.spl.examples import FIGURE1_SOURCE


def solve_taint(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    problem = TaintAnalysis(icfg)
    return icfg, problem, IFDSSolver(problem).solve()


def leaks(icfg, results):
    return [
        stmt.location
        for stmt, fact in TaintAnalysis.sink_queries(icfg)
        if fact in results.at(stmt)
    ]


class TestFigure3:
    """The exploded super graph of the paper's Figure 1b product."""

    def test_leak_found_in_figure1b_product(self):
        product = derive_product(parse_program(FIGURE1_SOURCE), {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        results = IFDSSolver(TaintAnalysis(icfg)).solve()
        assert leaks(icfg, results)

    def test_no_leak_when_sanitized(self):
        product = derive_product(parse_program(FIGURE1_SOURCE), {"F", "G"})
        icfg = ICFG.for_entry(lower_program(product))
        results = IFDSSolver(TaintAnalysis(icfg)).solve()
        assert not leaks(icfg, results)

    def test_results_at_includes_zero_optionally(self):
        product = derive_product(parse_program(FIGURE1_SOURCE), {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        results = IFDSSolver(TaintAnalysis(icfg)).solve()
        stmt = icfg.program.method("Main.main").instructions[1]
        from repro.ifds import ZERO

        assert ZERO not in results.at(stmt)
        assert ZERO in results.at(stmt, include_zero=True)


class TestContextSensitivity:
    def test_summaries_do_not_merge_call_sites(self):
        """The classic IFDS test: id() called with tainted and untainted
        arguments — taint must not bleed between the call sites."""
        source = """
        class Main {
            void main() {
                int clean = 0;
                int dirty = secret();
                int a = id(clean);
                int b = id(dirty);
                print(a);
                print(b);
            }
            int id(int p) { return p; }
        }
        """
        icfg, problem, results = solve_taint(source)
        hits = leaks(icfg, results)
        prints = [
            s for s in icfg.reachable_instructions() if isinstance(s, Print)
        ]
        # only print(b) leaks
        assert hits == [prints[1].location]

    def test_taint_through_two_levels_of_calls(self):
        source = """
        class Main {
            void main() {
                int x = secret();
                int y = outer(x);
                print(y);
            }
            int outer(int a) { return inner(a); }
            int inner(int b) { return b; }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)

    def test_recursion_terminates_and_propagates(self):
        source = """
        class Main {
            void main() {
                int x = secret();
                int y = rec(x, 3);
                print(y);
            }
            int rec(int v, int n) {
                if (n < 1) { return v; }
                return rec(v, n - 1);
            }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)

    def test_kill_in_callee(self):
        source = """
        class Main {
            void main() {
                int x = secret();
                int y = sanitize(x);
                print(y);
            }
            int sanitize(int p) { p = 0; return p; }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert not leaks(icfg, results)

    def test_taint_via_field(self):
        source = """
        class Box { int value; }
        class Main {
            void main() {
                Box b = new Box();
                b.value = secret();
                int out = b.value;
                print(out);
            }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)

    def test_field_receivers_merged(self):
        """Receiver-merged fields are conservative: a store through one
        box taints loads through another (documented imprecision)."""
        source = """
        class Box { int value; }
        class Main {
            void main() {
                Box a = new Box();
                Box b = new Box();
                a.value = secret();
                int out = b.value;
                print(out);
            }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)

    def test_branch_merges_facts(self):
        source = """
        class Main {
            void main() {
                int x = 0;
                int c = nondet();
                if (c < 1) { x = secret(); }
                print(x);
            }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)

    def test_loop_carried_taint(self):
        source = """
        class Main {
            void main() {
                int x = 0;
                int i = 0;
                while (i < 3) {
                    x = x + secret();
                    i = i + 1;
                }
                print(x);
            }
        }
        """
        icfg, problem, results = solve_taint(source)
        assert leaks(icfg, results)


class TestStats:
    def test_stats_populated(self):
        source = FIGURE1_SOURCE
        product = derive_product(parse_program(source), {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        solver = IFDSSolver(TaintAnalysis(icfg))
        solver.solve()
        assert solver.stats["path_edges"] > 0
        assert solver.stats["flow_applications"] > 0

    def test_fact_count(self):
        product = derive_product(parse_program(FIGURE1_SOURCE), {"G"})
        icfg = ICFG.for_entry(lower_program(product))
        results = IFDSSolver(TaintAnalysis(icfg)).solve()
        assert results.fact_count() > 0
