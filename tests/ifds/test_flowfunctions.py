"""Tests for the flow-function combinators (Figure 2 of the paper)."""

from repro.ifds import (
    Compose,
    Gen,
    Identity,
    Kill,
    KillAll,
    Lambda,
    Transfer,
    Union,
    ZERO,
)


class TestIdentity:
    def test_maps_fact_to_itself(self):
        assert Identity().compute_targets("a") == {"a"}
        assert Identity().compute_targets(ZERO) == {ZERO}

    def test_singleton(self):
        assert Identity() is Identity()


class TestKillAll:
    def test_maps_everything_to_empty(self):
        assert KillAll().compute_targets("a") == frozenset()
        assert KillAll().compute_targets(ZERO) == frozenset()

    def test_singleton(self):
        assert KillAll() is KillAll()


class TestGenKill:
    def test_gen_from_zero(self):
        """Figure 2's α: generates a (and keeps 0)."""
        gen = Gen({"a"}, ZERO)
        assert gen.compute_targets(ZERO) == {ZERO, "a"}

    def test_gen_passes_other_facts(self):
        gen = Gen({"a"}, ZERO)
        assert gen.compute_targets("b") == {"b"}

    def test_kill(self):
        kill = Kill({"b"})
        assert kill.compute_targets("b") == frozenset()
        assert kill.compute_targets("a") == {"a"}
        assert kill.compute_targets(ZERO) == {ZERO}

    def test_figure2_alpha(self):
        """α = gen {a} composed with kill {b}."""
        alpha = Compose(Kill({"b"}), Gen({"a"}, ZERO))
        assert alpha.compute_targets(ZERO) == {ZERO, "a"}
        assert alpha.compute_targets("b") == frozenset()
        assert alpha.compute_targets("c") == {"c"}

    def test_figure2_beta(self):
        """β: kills a, generates b, leaves c untouched."""
        beta = Compose(Kill({"a"}), Gen({"b"}, ZERO))
        assert beta.compute_targets("a") == frozenset()
        assert beta.compute_targets(ZERO) == {ZERO, "b"}
        assert beta.compute_targets("c") == {"c"}


class TestTransfer:
    def test_non_locally_separable_assignment(self):
        """Section 2.1's p = x: x keeps its value, p gets x's, old p dies."""
        transfer = Transfer("p", "x")
        assert transfer.compute_targets("x") == {"x", "p"}
        assert transfer.compute_targets("p") == frozenset()
        assert transfer.compute_targets(ZERO) == {ZERO}
        assert transfer.compute_targets("q") == {"q"}


class TestCombinators:
    def test_lambda(self):
        double = Lambda(lambda fact: [fact, fact.upper()] if fact != ZERO else [ZERO])
        assert double.compute_targets("a") == {"a", "A"}

    def test_compose_order(self):
        first = Lambda(lambda f: ["b"] if f == "a" else [f])
        second = Lambda(lambda f: ["c"] if f == "b" else [f])
        assert Compose(first, second).compute_targets("a") == {"c"}

    def test_compose_distributes(self):
        fan_out = Lambda(lambda f: ["x", "y"] if f == "a" else [f])
        mark = Lambda(lambda f: [f + "!"])
        assert Compose(fan_out, mark).compute_targets("a") == {"x!", "y!"}

    def test_union(self):
        union = Union(Identity(), Lambda(lambda f: ["extra"]))
        assert union.compute_targets("a") == {"a", "extra"}

    def test_union_empty(self):
        assert Union().compute_targets("a") == frozenset()

    def test_reprs(self):
        for fn in (
            Identity(),
            KillAll(),
            Gen({"a"}, ZERO),
            Kill({"a"}),
            Transfer("p", "x"),
            Union(Identity()),
        ):
            assert repr(fn)
