"""Unit tests for the exploded-super-graph materialization."""

import pytest

from repro.analyses import LocalFact, TaintAnalysis
from repro.ifds import ZERO, build_exploded_graph
from repro.ifds.explode import ExplodedEdge
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program


def graph_for(source):
    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    return icfg, build_exploded_graph(TaintAnalysis(icfg))


class TestStructure:
    SOURCE = """
    class Main {
        void main() { int x = secret(); int y = pass(x); print(y); }
        int pass(int p) { return p; }
    }
    """

    def test_zero_nodes_at_every_reachable_statement(self):
        icfg, graph = graph_for(self.SOURCE)
        for stmt in icfg.reachable_instructions():
            assert (stmt, ZERO) in graph.nodes, stmt.location

    def test_taint_nodes_present(self):
        icfg, graph = graph_for(self.SOURCE)
        facts = {fact for _, fact in graph.nodes}
        assert LocalFact("x") in facts
        assert LocalFact("p") in facts
        assert LocalFact("y") in facts

    def test_edge_kinds(self):
        icfg, graph = graph_for(self.SOURCE)
        kinds = {edge.kind for edge in graph.edges}
        assert kinds == {"normal", "call", "return", "call-to-return"}

    def test_successors(self):
        icfg, graph = graph_for(self.SOURCE)
        start = icfg.entry_points[0].start_point
        succs = graph.successors((start, ZERO))
        assert succs  # zero flows on

    def test_call_edge_maps_actual_to_formal(self):
        icfg, graph = graph_for(self.SOURCE)
        call_edges = [e for e in graph.edges if e.kind == "call"]
        mapped = {
            (str(e.source[1]), str(e.target[1])) for e in call_edges
        }
        assert ("x", "p") in mapped

    def test_return_edge_maps_back(self):
        icfg, graph = graph_for(self.SOURCE)
        return_edges = [e for e in graph.edges if e.kind == "return"]
        mapped = {
            (str(e.source[1]), str(e.target[1])) for e in return_edges
        }
        assert ("p", "y") in mapped

    def test_edge_labels_callback(self):
        icfg = ICFG.for_entry(
            lower_program(parse_program(self.SOURCE))
        )
        problem = TaintAnalysis(icfg)
        graph = build_exploded_graph(
            problem, edge_labels=lambda kind, *_: kind[:1]
        )
        assert all(edge.label for edge in graph.edges)

    def test_dot_rendering(self):
        icfg, graph = graph_for(self.SOURCE)
        dot = graph.to_dot("demo")
        assert dot.startswith("digraph demo")
        assert "subgraph cluster_0" in dot
        assert dot.count("->") == len(graph.edges)

    def test_edge_repr(self):
        edge = ExplodedEdge(("s", ZERO), ("t", ZERO), "normal", "F")
        assert "normal" in repr(edge)
        assert "[F]" in repr(edge)


class TestGraphVsSolver:
    def test_graph_reachability_equals_solver_results(self):
        """Node (s, d) is in the materialized graph iff the solver reports
        d at s — graph reachability IS the IFDS solution (Section 2.1)."""
        from repro.ifds import IFDSSolver

        source = """
        class Main {
            void main() {
                int x = secret();
                int y = 0;
                int c = nondet();
                if (c < 1) { y = x; }
                print(y);
            }
        }
        """
        icfg = ICFG.for_entry(lower_program(parse_program(source)))
        problem = TaintAnalysis(icfg)
        graph = build_exploded_graph(problem)
        results = IFDSSolver(problem).solve()
        for stmt in icfg.reachable_instructions():
            solver_facts = results.at(stmt, include_zero=True)
            graph_facts = {
                fact for node_stmt, fact in graph.nodes if node_stmt is stmt
            }
            assert solver_facts == graph_facts, stmt.location
