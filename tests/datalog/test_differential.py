"""Differential testing: datalog engine vs the tabulation reference.

The two engines share the lifted problem, the BDD constraint system, and
phase II of the IDE algorithm but compute the exploded-graph fixpoint in
completely different styles (worklist tabulation vs set-at-a-time
semi-naive rules).  A unique least fixpoint plus canonical constraints
means the canonical ``result_digest`` must be *bit-identical* — any
divergence is a bug in one of them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyses import (
    NullnessAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.core import SPLLift
from repro.spl import device_spl, figure1
from repro.spl.generator import SubjectSpec, generate_subject

ANALYSES = [
    TaintAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
    NullnessAnalysis,
]


def solve_both(product_line, analysis_class, fm_mode="edge"):
    """Solve with both engines on fresh problem instances."""
    feature_model = product_line.feature_model if fm_mode != "ignore" else None
    tabulate = SPLLift(
        analysis_class(product_line.icfg),
        feature_model=feature_model,
        fm_mode=fm_mode,
    ).solve(engine="tabulate")
    datalog = SPLLift(
        analysis_class(product_line.icfg),
        feature_model=feature_model,
        fm_mode=fm_mode,
    ).solve(engine="datalog")
    return tabulate, datalog


def assert_identical(product_line, analysis_class, fm_mode="edge"):
    tabulate, datalog = solve_both(product_line, analysis_class, fm_mode)
    assert datalog.result_digest() == tabulate.result_digest(), (
        f"{product_line.name}/{analysis_class.__name__} (fm={fm_mode}): "
        "engines disagree"
    )
    return tabulate, datalog


class TestPaperSubjects:
    @pytest.mark.parametrize("analysis_class", ANALYSES)
    def test_figure1_identical(self, analysis_class):
        assert_identical(figure1(), analysis_class)

    @pytest.mark.parametrize("analysis_class", ANALYSES)
    def test_device_spl_identical(self, analysis_class):
        assert_identical(device_spl(), analysis_class)

    def test_feature_model_ignored_identical(self):
        assert_identical(device_spl(), TaintAnalysis, fm_mode="ignore")

    def test_datalog_reports_engine_and_counters(self):
        _, datalog = solve_both(figure1(), TaintAnalysis)
        stats = datalog.stats
        assert stats["engine"] == "datalog"
        for counter in (
            "rules_fired",
            "iterations",
            "strata",
            "tuples_derived",
            "path_edges",
            "summary_edges",
        ):
            assert counter in stats
        assert stats["rules_fired"] > 0
        assert stats["path_edges"] > 0

    def test_tabulate_stats_unchanged(self):
        """The default engine's stats must not grow an ``engine`` key —
        stored records and their digests stay byte-identical to HEAD."""
        tabulate, _ = solve_both(figure1(), TaintAnalysis)
        assert "engine" not in tabulate.stats


class TestGeneratedSubjects:
    @pytest.mark.parametrize("analysis_class", ANALYSES)
    @pytest.mark.parametrize("seed", [5, 23, 61])
    def test_generated_identical(self, analysis_class, seed):
        spec = SubjectSpec(
            name=f"dl-{seed}",
            seed=seed,
            classes=4,
            methods_per_class=(2, 3),
            statements_per_method=(4, 8),
            annotation_density=0.35,
            entry_fanout=5,
            reachable_features=("A", "B", "C"),
        )
        assert_identical(generate_subject(spec), analysis_class)


class TestHypothesisDifferential:
    """Property-based: random SPL shapes, both engines, identical digests."""

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        density=st.floats(min_value=0.1, max_value=0.6),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_subjects_taint(self, seed, density):
        spec = SubjectSpec(
            name=f"dl-hyp-{seed}",
            seed=seed,
            classes=3,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=density,
            entry_fanout=4,
            reachable_features=("A", "B"),
        )
        assert_identical(generate_subject(spec), TaintAnalysis)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=8, deadline=None)
    def test_random_subjects_uninit(self, seed):
        spec = SubjectSpec(
            name=f"dl-hypu-{seed}",
            seed=seed,
            classes=3,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=0.4,
            entry_fanout=4,
            reachable_features=("A", "B"),
            uninit_density=0.5,
        )
        assert_identical(generate_subject(spec), UninitializedVariablesAnalysis)

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        analysis_index=st.integers(min_value=0, max_value=len(ANALYSES) - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_subject_random_analysis(self, seed, analysis_index):
        spec = SubjectSpec(
            name=f"dl-hypa-{seed}",
            seed=seed,
            classes=3,
            methods_per_class=(2, 3),
            statements_per_method=(3, 6),
            annotation_density=0.3,
            entry_fanout=4,
            reachable_features=("A", "B", "C"),
        )
        assert_identical(generate_subject(spec), ANALYSES[analysis_index])
