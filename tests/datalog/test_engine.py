"""Unit tests for the generic semi-naive core (repro.datalog.engine)."""

import pytest

from repro.constraints import BddConstraintSystem
from repro.datalog import Relation, Rule, SemiNaiveEvaluator, resolve_engine


@pytest.fixture
def system():
    return BddConstraintSystem()


class TestRelationAdvance:
    def test_first_insertion_enters_delta_and_fires_hook(self, system):
        relation = Relation("r")
        seen = []
        relation.on_insert = seen.append
        relation.contribute(("a",), system.var("F"))
        counters = dict.fromkeys(
            ("tuples_derived", "subsumption_hits", "or_all_batches", "delta_tuples"), 0
        )
        assert relation.advance(system, counters)
        assert relation.tuples[("a",)] == system.var("F")
        assert relation.delta == {("a",): system.var("F")}
        assert seen == [("a",)]
        assert counters["tuples_derived"] == 1
        assert counters["or_all_batches"] == 0  # single contribution: no fold

    def test_multiple_contributions_folded_with_one_or_all(self, system):
        relation = Relation("r")
        relation.contribute(("a",), system.var("F"))
        relation.contribute(("a",), system.var("G"))
        counters = dict.fromkeys(
            ("tuples_derived", "subsumption_hits", "or_all_batches", "delta_tuples"), 0
        )
        relation.advance(system, counters)
        assert relation.tuples[("a",)] == system.var("F") | system.var("G")
        assert counters["or_all_batches"] == 1

    def test_false_contribution_is_not_a_tuple(self, system):
        relation = Relation("r")
        relation.contribute(("a",), system.false)
        assert not relation.pending
        counters = dict.fromkeys(
            ("tuples_derived", "subsumption_hits", "or_all_batches", "delta_tuples"), 0
        )
        assert not relation.advance(system, counters)
        assert len(relation) == 0

    def test_subsumed_contribution_retracted(self, system):
        """Re-deriving under an implied constraint must not re-enter the delta."""
        relation = Relation("r")
        counters = dict.fromkeys(
            ("tuples_derived", "subsumption_hits", "or_all_batches", "delta_tuples"), 0
        )
        relation.contribute(("a",), system.var("F") | system.var("G"))
        relation.advance(system, counters)
        relation.contribute(("a",), system.var("F"))  # implied by F|G
        assert not relation.advance(system, counters)
        assert counters["subsumption_hits"] == 1
        assert relation.tuples[("a",)] == system.var("F") | system.var("G")

    def test_widening_contribution_becomes_delta(self, system):
        relation = Relation("r")
        counters = dict.fromkeys(
            ("tuples_derived", "subsumption_hits", "or_all_batches", "delta_tuples"), 0
        )
        relation.contribute(("a",), system.var("F"))
        relation.advance(system, counters)
        relation.contribute(("a",), system.var("G"))
        assert relation.advance(system, counters)
        assert relation.tuples[("a",)] == system.var("F") | system.var("G")
        # The delta carries the *batch*, not the joined store — downstream
        # rules re-fire only on what is new.
        assert relation.delta == {("a",): system.var("G")}


def edge_closure_rules(system, edge, path):
    """Transitive closure: path(x,y) :- edge(x,y); path(x,z) :- path(x,y), edge(y,z)."""

    def copy_edges(relation, delta):
        for key, constraint in delta.items():
            path.contribute(key, constraint)

    def extend(relation, delta):
        if relation is path:
            for (x, y), c in delta.items():
                for (y2, z), c2 in list(edge.tuples.items()):
                    if y2 == y:
                        path.contribute((x, z), c & c2)
        else:  # delta on edge
            for (y, z), c2 in delta.items():
                for (x, y2), c in list(path.tuples.items()):
                    if y2 == y:
                        path.contribute((x, z), c & c2)

    return [
        Rule("copy", (edge,), copy_edges),
        Rule("extend", (path, edge), extend),
    ]


class TestSemiNaiveEvaluator:
    def test_transitive_closure_fixpoint(self, system):
        edge, path = Relation("edge"), Relation("path")
        edge.contribute(("a", "b"), system.var("F"))
        edge.contribute(("b", "c"), system.var("G"))
        edge.contribute(("c", "d"), system.true)
        evaluator = SemiNaiveEvaluator(system, (edge, path))
        evaluator.evaluate([edge_closure_rules(system, edge, path)])
        assert path.tuples[("a", "c")] == system.var("F") & system.var("G")
        assert path.tuples[("a", "d")] == system.var("F") & system.var("G")
        assert path.tuples[("b", "d")] == system.var("G")
        assert len(path) == 6

    def test_deltas_exhausted_after_evaluate(self, system):
        """On return every relation's delta AND pending must be empty."""
        edge, path = Relation("edge"), Relation("path")
        edge.contribute(("a", "b"), system.true)
        edge.contribute(("b", "a"), system.true)  # a cycle, to iterate
        evaluator = SemiNaiveEvaluator(system, (edge, path))
        evaluator.evaluate([edge_closure_rules(system, edge, path)])
        for relation in (edge, path):
            assert not relation.delta
            assert not relation.pending
        assert evaluator.counters["iterations"] >= 2

    def test_cycle_terminates_by_subsumption(self, system):
        edge, path = Relation("edge"), Relation("path")
        edge.contribute(("a", "b"), system.var("F"))
        edge.contribute(("b", "a"), system.var("G"))
        evaluator = SemiNaiveEvaluator(system, (edge, path))
        evaluator.evaluate([edge_closure_rules(system, edge, path)])
        # Going around the loop again derives path(a,a) @ F&G&F&G = F&G,
        # which is subsumed — that is the only thing stopping iteration.
        assert evaluator.counters["subsumption_hits"] > 0
        assert path.tuples[("a", "a")] == system.var("F") & system.var("G")

    def test_stratum_ordering_replays_earlier_conclusions(self, system):
        """A later stratum's rules must see tuples the earlier stratum
        derived, even though its deltas are exhausted by then."""
        base, derived = Relation("base"), Relation("derived")

        def promote(relation, delta):
            for key, constraint in delta.items():
                derived.contribute(key, constraint)

        base.contribute(("x",), system.var("F"))
        evaluator = SemiNaiveEvaluator(system, (base, derived))
        evaluator.evaluate([[], [Rule("promote", (base,), promote)]])
        assert derived.tuples == {("x",): system.var("F")}
        assert evaluator.counters["strata"] == 2

    def test_rule_fired_once_per_dirty_body_relation(self, system):
        r1, r2, head = Relation("r1"), Relation("r2"), Relation("head")
        fires = []

        def record(relation, delta):
            fires.append(relation.name)

        r1.contribute(("a",), system.true)
        r2.contribute(("b",), system.true)
        evaluator = SemiNaiveEvaluator(system, (r1, r2, head))
        evaluator.evaluate([[Rule("watch", (r1, r2), record)]])
        assert sorted(fires) == ["r1", "r2"]
        assert evaluator.counters["rules_fired"] == 2


class TestResolveEngine:
    def test_default_is_tabulate(self, monkeypatch):
        monkeypatch.delenv("SPLLIFT_ENGINE", raising=False)
        assert resolve_engine(None) == "tabulate"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("SPLLIFT_ENGINE", "datalog")
        assert resolve_engine(None) == "datalog"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("SPLLIFT_ENGINE", "datalog")
        assert resolve_engine("tabulate") == "tabulate"

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="bogus"):
            resolve_engine("bogus")
