"""Tests for the ``spllift`` command-line tool."""

import pytest

from repro.cli import main
from repro.spl.examples import FIGURE1_SOURCE

FM_TEXT = """
featuremodel fig1
root Fig1 { optional F optional G optional H }
"""

DEVICE_FM = """
featuremodel fig1
root Fig1 { optional F optional G optional H }
constraint F <-> G;
"""


@pytest.fixture
def spl_file(tmp_path):
    path = tmp_path / "fig1.mj"
    path.write_text(FIGURE1_SOURCE)
    return str(path)


@pytest.fixture
def fm_file(tmp_path):
    path = tmp_path / "fig1.fm"
    path.write_text(FM_TEXT)
    return str(path)


class TestAnalyze:
    def test_taint_finds_leak(self, spl_file, fm_file, capsys):
        rc = main(["analyze", spl_file, "--analysis", "taint", "--feature-model", fm_file])
        out = capsys.readouterr().out
        assert rc == 1  # findings present
        assert "!F & G & !H" in out

    def test_taint_without_model(self, spl_file, capsys):
        rc = main(["analyze", spl_file, "--analysis", "taint"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "!F & G & !H" in out

    def test_constraining_model_removes_finding(self, spl_file, tmp_path, capsys):
        fm = tmp_path / "strict.fm"
        fm.write_text(DEVICE_FM)
        rc = main(
            ["analyze", spl_file, "--analysis", "taint", "--feature-model", str(fm)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "no findings" in out

    def test_fm_mode_ignore(self, spl_file, tmp_path, capsys):
        fm = tmp_path / "strict.fm"
        fm.write_text(DEVICE_FM)
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--feature-model",
                str(fm),
                "--fm-mode",
                "ignore",
            ]
        )
        assert rc == 1  # without the model the leak is reported

    def test_uninit_analysis(self, tmp_path, capsys):
        source = tmp_path / "u.mj"
        source.write_text(
            "class Main { void main() { int u;\n#ifdef (Init)\nu = 1;\n#endif\nprint(u); } }"
        )
        rc = main(["analyze", str(source), "--analysis", "uninit"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "!Init" in out

    def test_stats_flag(self, spl_file, capsys):
        main(["analyze", spl_file, "--analysis", "taint", "--stats"])
        out = capsys.readouterr().out
        assert "jump_functions" in out

    def test_rd_informational(self, spl_file, capsys):
        rc = main(["analyze", spl_file, "--analysis", "rd"])
        assert rc == 1
        assert "@" in capsys.readouterr().out

    def test_worklist_order_flag_keeps_findings(self, spl_file, fm_file, capsys):
        main(["analyze", spl_file, "--analysis", "taint", "--feature-model", fm_file])
        default_out = capsys.readouterr().out
        for order in ("fifo", "lifo", "random", "rpo"):
            rc = main(
                [
                    "analyze",
                    spl_file,
                    "--analysis",
                    "taint",
                    "--feature-model",
                    fm_file,
                    "--worklist-order",
                    order,
                ]
            )
            assert rc == 1
            assert capsys.readouterr().out == default_out

    def test_worklist_order_reported_in_stats(self, spl_file, capsys):
        main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--worklist-order",
                "rpo",
                "--stats",
            ]
        )
        assert "worklist_order: rpo" in capsys.readouterr().out

    def test_reorder_flag_keeps_findings(self, spl_file, fm_file, capsys):
        main(["analyze", spl_file, "--analysis", "taint", "--feature-model", fm_file])
        default_out = capsys.readouterr().out
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--feature-model",
                fm_file,
                "--reorder",
                "sift",
            ]
        )
        assert rc == 1
        assert capsys.readouterr().out == default_out

    def test_parallel_flag_keeps_findings(self, tmp_path, capsys):
        source = tmp_path / "uninit.mj"
        source.write_text(
            "class Main { void main() { int u; int v;\n#ifdef (Init)\nu = 1;\n"
            "#endif\nv = 2;\nprint(u); print(v); } }"
        )
        rc = main(["analyze", str(source), "--analysis", "uninit"])
        sequential_out = capsys.readouterr().out
        parallel_rc = main(
            ["analyze", str(source), "--analysis", "uninit", "--parallel", "2"]
        )
        assert parallel_rc == rc
        assert capsys.readouterr().out == sequential_out

    def test_bad_worklist_order_rejected(self, spl_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", spl_file, "--analysis", "taint", "--worklist-order", "xyz"])


class TestEngineFlag:
    def test_datalog_engine_same_findings(self, spl_file, fm_file, capsys):
        main(["analyze", spl_file, "--analysis", "taint", "--feature-model", fm_file])
        tabulate_out = capsys.readouterr().out
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--feature-model",
                fm_file,
                "--engine",
                "datalog",
            ]
        )
        assert rc == 1
        assert capsys.readouterr().out == tabulate_out

    def test_datalog_stats_reported(self, spl_file, capsys):
        main(["analyze", spl_file, "--analysis", "taint", "--engine", "datalog", "--stats"])
        out = capsys.readouterr().out
        assert "engine: datalog" in out
        assert "rules_fired" in out

    def test_unknown_engine_clean_error(self, spl_file, capsys):
        rc = main(["analyze", spl_file, "--analysis", "taint", "--engine", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("spllift: error: ")
        assert "bogus" in err
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_engine_env_var_resolved(self, spl_file, capsys, monkeypatch):
        monkeypatch.setenv("SPLLIFT_ENGINE", "not-an-engine")
        rc = main(["analyze", spl_file, "--analysis", "taint"])
        assert rc == 2
        assert "not-an-engine" in capsys.readouterr().err

    def test_datalog_rejects_incremental_cache(self, spl_file, tmp_path, capsys):
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--engine",
                "datalog",
                "--incremental-cache",
                str(tmp_path / "inc.db"),
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("spllift: error: ")
        assert "--incremental-cache" in err
        assert len(err.strip().splitlines()) == 1

    def test_incremental_cache_parallel_warns_and_reports_one_worker(
        self, spl_file, tmp_path, capsys
    ):
        """--parallel with --incremental-cache must not silently downgrade."""
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--incremental-cache",
                str(tmp_path / "inc.db"),
                "--parallel",
                "2",
                "--stats",
            ]
        )
        assert rc in (0, 1)
        captured = capsys.readouterr()
        warnings = [
            line
            for line in captured.err.splitlines()
            if line.startswith("spllift: warning: ")
        ]
        assert len(warnings) == 1
        assert "ignoring parallel=2" in warnings[0]
        assert "parallel_workers: 1" in captured.out

    def test_datalog_parallel_warns(self, spl_file, capsys):
        rc = main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--engine",
                "datalog",
                "--parallel",
                "2",
                "--stats",
            ]
        )
        assert rc in (0, 1)
        captured = capsys.readouterr()
        assert "datalog engine is sequential" in captured.err
        assert "parallel_workers: 1" in captured.out


class TestRun:
    def test_run_configuration(self, spl_file, capsys):
        rc = main(["run", spl_file, "--config", "G"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "42  [tainted]" in captured.out

    def test_run_empty_configuration(self, spl_file, capsys):
        rc = main(["run", spl_file, "--config", ""])
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.strip() == "0"

    def test_run_reports_uninit(self, tmp_path, capsys):
        source = tmp_path / "u.mj"
        source.write_text("class Main { void main() { int u; print(u); } }")
        rc = main(["run", str(source)])
        captured = capsys.readouterr()
        assert "uninitialized read" in captured.err

    def test_run_incomplete_execution(self, tmp_path, capsys):
        source = tmp_path / "loop.mj"
        source.write_text(
            "class Main { void main() { int i = 0; while (i < 1) { i = 0; } } }"
        )
        rc = main(["run", str(source), "--fuel", "100"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "stopped early" in captured.err


class TestInterfacesAndMetrics:
    def test_interfaces(self, spl_file, capsys):
        rc = main(["interfaces", spl_file, "--feature", "G"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "emergent interface of feature 'G'" in out

    def test_metrics(self, spl_file, fm_file, capsys):
        rc = main(["metrics", spl_file, "--feature-model", fm_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "features (reachable):     3" in out
        assert "configurations (valid):     8" in out

    def test_metrics_without_model(self, spl_file, capsys):
        rc = main(["metrics", spl_file])
        assert rc == 0


class TestMoreAnalyses:
    def test_nullness_analysis(self, tmp_path, capsys):
        source = tmp_path / "n.mj"
        source.write_text(
            "class Box { int get() { return 1; } }\n"
            "class Main { void main() {\n"
            "Box b = new Box();\n"
            "#ifdef (Drop)\nb = null;\n#endif\n"
            "int x = b.get(); } }"
        )
        rc = main(["analyze", str(source), "--analysis", "nullness"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "Drop" in out

    def test_typestate_analysis(self, tmp_path, capsys):
        source = tmp_path / "t.mj"
        source.write_text(
            "class File { int open() { return 0; } int read() { return 0; }"
            " int write() { return 0; } int close() { return 0; } }\n"
            "class Main { void main() {\n"
            "File f = new File();\n"
            "#ifdef (Open)\nf.open();\n#endif\n"
            "int x = f.read(); } }"
        )
        rc = main(["analyze", str(source), "--analysis", "typestate"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "!Open" in out

    def test_types_analysis(self, spl_file, capsys):
        rc = main(["analyze", spl_file, "--analysis", "types"])
        assert rc == 1  # informational facts at exits


class TestTelemetry:
    """The ``--trace``/``--metrics`` surfaces and ``trace summary``."""

    def test_analyze_trace_writes_chrome_trace(
        self, spl_file, tmp_path, capsys
    ):
        import json

        trace_path = tmp_path / "trace.json"
        main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--trace",
                str(trace_path),
            ]
        )
        events = json.loads(trace_path.read_text())
        names = {event["name"] for event in events}
        assert {"spllift/solve", "ide/solve", "ide/phase1/tabulation"} <= names
        begins = sum(1 for event in events if event["ph"] == "B")
        ends = sum(1 for event in events if event["ph"] == "E")
        assert begins == ends and begins > 0
        # The CLI tears tracing down after the run (in-process callers).
        from repro.obs import runtime as obs

        assert not obs.tracing_enabled()

    def test_analyze_metrics_report(self, spl_file, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "taint",
                "--metrics",
                str(metrics_path),
            ]
        )
        report = json.loads(metrics_path.read_text())
        assert report["schema"] == "spllift-metrics/v1"
        assert report["metrics"]["counters"]["ide.solver.jump_functions"] > 0
        # BDD table-health gauges ride along with the solver stats.
        gauges = report["metrics"]["gauges"]
        assert 0.0 < gauges["bdd.unique_load_factor"] <= 1.0
        assert 0.0 <= gauges["bdd.apply_cache_occupancy"] <= 1.0

    def test_trace_summary_breakdown(self, spl_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "uninit",
                "--trace",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        rc = main(["trace", "summary", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ide/phase1/tabulation" in out
        assert "top-level span coverage:" in out

    def test_trace_summary_folded_export(self, spl_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(
            [
                "analyze",
                spl_file,
                "--analysis",
                "uninit",
                "--trace",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        rc = main(["trace", "summary", str(trace_path), "--folded"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.splitlines()
        assert lines, "folded export must produce at least one stack"
        for line in lines:
            stack, sep, value = line.rpartition(" ")
            assert sep and stack and value.isdigit()
            assert all(frame for frame in stack.split(";"))
        assert any(line.startswith("spllift/solve;") for line in lines)
        # The folded file passes the format gate in scripts/check_trace.py.
        import subprocess
        import sys
        from pathlib import Path

        folded_path = tmp_path / "trace.folded"
        folded_path.write_text(out)
        script = Path(__file__).resolve().parents[1] / "scripts" / "check_trace.py"
        result = subprocess.run(
            [sys.executable, str(script), str(folded_path), "--folded"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_trace_summary_rejects_eventless_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("[]\n")
        rc = main(["trace", "summary", str(empty)])
        assert rc == 2
        assert "no trace events" in capsys.readouterr().err
