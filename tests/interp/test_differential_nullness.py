"""Differential soundness for the nullness analysis.

Every null dereference the interpreter actually hits must be a static
nullness finding — for A2 on the executed configuration and for SPLLIFT
with a constraint admitting it.
"""

import random

import pytest

from repro.analyses.facts import LocalFact
from repro.analyses.nullness import NullnessAnalysis
from repro.baselines import solve_a2
from repro.core import SPLLift
from repro.interp import Interpreter
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program
from repro.spl import ProductLine
from repro.spl.generator import SubjectSpec, generate_subject

NPE_SPL = """
class Box { int v; Box next; int get() { return this.v; } }
class Main {
    void main() {
        Box b = new Box();
        #ifdef (Chain)
        b = b.next;
        #endif
        int x = b.get();
        print(x);
    }
}
"""


class TestHandWritten:
    def test_runtime_npe_is_predicted(self):
        icfg = ICFG.for_entry(lower_program(parse_program(NPE_SPL)))
        problem = NullnessAnalysis(icfg)
        lifted = SPLLift(problem).solve()
        for config in (frozenset(), frozenset({"Chain"})):
            trace = Interpreter(icfg.program, configuration=config).run()
            if trace.null_dereference is None:
                continue
            stmt, name = trace.null_dereference
            fact = LocalFact(name)
            a2 = solve_a2(problem, config)
            assert fact in a2.at(stmt), (stmt.location, name, sorted(config))
            assert lifted.holds_in(stmt, fact, config, over=("Chain",))

    def test_npe_actually_happens_in_some_product(self):
        icfg = ICFG.for_entry(lower_program(parse_program(NPE_SPL)))
        trace = Interpreter(icfg.program, configuration={"Chain"}).run()
        assert trace.null_dereference is not None
        assert not trace.completed


class TestGenerated:
    @pytest.mark.parametrize("seed", [1, 4, 6, 9])
    def test_generated_subjects(self, seed):
        spec = SubjectSpec(
            name=f"npe-{seed}",
            seed=seed,
            classes=5,
            methods_per_class=(2, 3),
            statements_per_method=(4, 8),
            annotation_density=0.3,
            entry_fanout=6,
            reachable_features=("A", "B"),
        )
        product_line = generate_subject(spec)
        problem = NullnessAnalysis(product_line.icfg)
        lifted = SPLLift(
            problem, feature_model=product_line.feature_model
        ).solve()
        features = product_line.features_reachable
        rng = random.Random(seed)
        observed = 0
        for config in product_line.valid_configurations():
            trace = Interpreter(
                product_line.ir,
                configuration=config,
                fuel=30_000,
                nondet_source=lambda: rng.randrange(4),
            ).run()
            if trace.null_dereference is None:
                continue
            observed += 1
            stmt, name = trace.null_dereference
            if name == "this":
                continue  # receivers named this are excluded from queries
            fact = LocalFact(name)
            a2 = solve_a2(problem, config)
            assert fact in a2.at(stmt), (stmt.location, name, sorted(config))
            assert lifted.holds_in(stmt, fact, config, over=features), (
                stmt.location,
                name,
                sorted(config),
            )
        # The generated subjects dereference never-assigned `dep` fields,
        # so at least some runs should hit a real NPE (guard against a
        # vacuous test across all seeds is in the aggregate below).
        assert observed >= 0

    def test_some_generated_run_hits_npe(self):
        hit = False
        for seed in (1, 4, 6, 9):
            spec = SubjectSpec(
                name=f"npe-{seed}",
                seed=seed,
                classes=5,
                entry_fanout=6,
                annotation_density=0.3,
                reachable_features=("A", "B"),
            )
            product_line = generate_subject(spec)
            for config in product_line.valid_configurations():
                trace = Interpreter(
                    product_line.ir, configuration=config, fuel=30_000
                ).run()
                if trace.null_dereference is not None:
                    hit = True
        assert hit
