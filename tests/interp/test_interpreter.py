"""Unit tests for the MiniJava interpreter."""

import pytest

from repro.interp import Interpreter, InterpreterError
from repro.ir import lower_program
from repro.minijava import derive_product, parse_program
from repro.spl.examples import FIGURE1_SOURCE


def run(source, configuration=None, **kwargs):
    program = lower_program(parse_program(source))
    return Interpreter(program, configuration=configuration, **kwargs).run()


def run_main(body, extra="", **kwargs):
    return run(f"class Main {{ void main() {{ {body} }} {extra} }}", **kwargs)


class TestArithmeticAndControl:
    def test_arithmetic(self):
        trace = run_main("int x = 2 + 3 * 4; print(x);")
        assert trace.printed_data() == [14]

    def test_division_and_modulo(self):
        trace = run_main("int x = 17 / 5; int y = 17 % 5; print(x); print(y);")
        assert trace.printed_data() == [3, 2]

    def test_division_by_zero_stops(self):
        trace = run_main("int z = 0; int x = 1 / z; print(x);")
        assert not trace.completed
        assert "division by zero" in trace.stop_reason

    def test_comparisons_and_negation(self):
        trace = run_main(
            "boolean b = 3 < 5; if (b) { print(1); } if (!b) { print(0); }"
        )
        assert trace.printed_data() == [1]

    def test_if_else(self):
        trace = run_main(
            "int x = 10; if (x < 5) { print(1); } else { print(2); }"
        )
        assert trace.printed_data() == [2]

    def test_while_loop(self):
        trace = run_main(
            "int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s);"
        )
        assert trace.printed_data() == [10]

    def test_fuel_exhaustion(self):
        trace = run_main(
            "int i = 0; while (i < 1) { i = 0; } print(i);", fuel=100
        )
        assert not trace.completed
        assert "fuel" in trace.stop_reason

    def test_unary_minus(self):
        trace = run_main("int x = 5; print(-x);")
        assert trace.printed_data() == [-5]


class TestObjectsAndCalls:
    def test_method_call_and_return(self):
        trace = run_main(
            "int y = twice(21); print(y);",
            extra="int twice(int n) { return n + n; }",
        )
        assert trace.printed_data() == [42]

    def test_fields_default_to_zero(self):
        trace = run_main(
            "int x = this.f; print(x);",
            extra="int f;",
        ).printed_data()
        assert trace == [0]

    def test_field_store_load(self):
        trace = run_main(
            "this.f = 7; int x = this.f; print(x);", extra="int f;"
        )
        assert trace.printed_data() == [7]

    def test_objects_have_separate_fields(self):
        source = """
        class Box { int v; }
        class Main { void main() {
            Box a = new Box();
            Box b = new Box();
            a.v = 1;
            b.v = 2;
            print(a.v);
            print(b.v);
        } }
        """
        assert run(source).printed_data() == [1, 2]

    def test_dynamic_dispatch(self):
        source = """
        class A { int id() { return 1; } }
        class B extends A { int id() { return 2; } }
        class Main { void main() {
            A x = new A();
            A y = new B();
            print(x.id());
            print(y.id());
        } }
        """
        assert run(source).printed_data() == [1, 2]

    def test_inherited_method(self):
        source = """
        class A { int id() { return 7; } }
        class B extends A { }
        class Main { void main() { B b = new B(); print(b.id()); } }
        """
        assert run(source).printed_data() == [7]

    def test_recursion(self):
        trace = run_main(
            "print(fib(10));",
            extra="""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            """,
        )
        assert trace.printed_data() == [55]

    def test_depth_limit(self):
        trace = run_main(
            "int x = down(0); print(x);",
            extra="int down(int n) { return down(n + 1); }",
            max_depth=50,
        )
        assert not trace.completed
        assert "depth" in trace.stop_reason

    def test_null_dereference_stops(self):
        source = """
        class Box { int v; }
        class Main { void main() {
            Box b = new Box();
            b = null;
            int x = b.v;
            print(x);
        } }
        """
        trace = run(source)
        assert not trace.completed
        assert "null" in trace.stop_reason


class TestShadowBits:
    def test_secret_is_tainted(self):
        trace = run_main("int x = secret(); print(x);")
        assert len(trace.tainted_prints) == 1

    def test_taint_through_arithmetic(self):
        trace = run_main("int x = secret(); int y = x + 1; print(y);")
        assert len(trace.tainted_prints) == 1

    def test_overwrite_untaints(self):
        trace = run_main("int x = secret(); x = 0; print(x);")
        assert not trace.tainted_prints

    def test_custom_secret_source(self):
        trace = run_main(
            "print(secret());", secret_source=lambda: 1234
        )
        assert trace.printed_data() == [1234]

    def test_nondet_source(self):
        values = iter([5, 6])
        trace = run_main(
            "print(nondet()); print(nondet());",
            nondet_source=lambda: next(values),
        )
        assert trace.printed_data() == [5, 6]

    def test_uninit_read_recorded(self):
        trace = run_main("int u; print(u);")
        assert [(name) for _, name in trace.uninit_reads] == ["u"]

    def test_initialized_read_clean(self):
        trace = run_main("int u = 1; print(u);")
        assert not trace.uninit_reads

    def test_uninit_through_call(self):
        trace = run_main(
            "int u; int y = pass(u); print(y);",
            extra="int pass(int p) { return p; }",
        )
        names = [name for _, name in trace.uninit_reads]
        # read of u at the call, read of p at the return, read of y at print
        assert "u" in names and "p" in names and "y" in names


class TestProductLines:
    @pytest.mark.parametrize(
        "config,expected_prints,expected_taints",
        [
            (set(), [0], 0),
            ({"G"}, [42], 1),
            ({"F", "G"}, [0], 0),
            ({"G", "H"}, [0], 0),
            ({"F", "G", "H"}, [0], 0),
        ],
    )
    def test_figure1_per_configuration(
        self, config, expected_prints, expected_taints
    ):
        program = lower_program(parse_program(FIGURE1_SOURCE))
        trace = Interpreter(program, configuration=config).run()
        assert trace.printed_data() == expected_prints
        assert len(trace.tainted_prints) == expected_taints

    def test_product_line_execution_matches_product_execution(self):
        """Interpreting the SPL under c ≡ interpreting preprocess(c)."""
        program_ast = parse_program(FIGURE1_SOURCE)
        spl_program = lower_program(program_ast)
        for config in (set(), {"G"}, {"F", "G"}, {"G", "H"}, {"F", "G", "H"}):
            spl_trace = Interpreter(spl_program, configuration=config).run()
            product = lower_program(derive_product(program_ast, config))
            product_trace = Interpreter(product).run()
            assert spl_trace.printed_data() == product_trace.printed_data()

    def test_annotated_program_without_configuration_rejected(self):
        program = lower_program(parse_program(FIGURE1_SOURCE))
        with pytest.raises(InterpreterError):
            Interpreter(program).run()

    def test_disabled_early_return_falls_through(self):
        source = """
        class Main {
            void main() { print(choose()); }
            int choose() {
                #ifdef (R) return 1; #endif
                return 2;
            }
        }
        """
        program = lower_program(parse_program(source))
        assert Interpreter(program, configuration={"R"}).run().printed_data() == [1]
        assert Interpreter(program, configuration=set()).run().printed_data() == [2]

    def test_disabled_loop_skipped(self):
        source = """
        class Main { void main() {
            int i = 0;
            #ifdef (Loop)
            while (i < 3) { i = i + 1; }
            #endif
            print(i);
        } }
        """
        program = lower_program(parse_program(source))
        assert Interpreter(program, configuration={"Loop"}).run().printed_data() == [3]
        assert Interpreter(program, configuration=set()).run().printed_data() == [0]
