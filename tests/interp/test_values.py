"""Unit tests for runtime values and shadow bits."""

import pytest

from repro.interp.values import (
    ObjectRef,
    Value,
    bool_value,
    int_value,
    null_value,
    uninitialized,
)


class TestValues:
    def test_int_value(self):
        value = int_value(42)
        assert value.data == 42
        assert not value.tainted
        assert value.initialized

    def test_tainted_int(self):
        assert int_value(1, tainted=True).tainted

    def test_bool_value(self):
        assert bool_value(True).data is True
        assert bool_value(False).data is False

    def test_null(self):
        value = null_value()
        assert value.is_null
        assert value.data is None

    def test_uninitialized(self):
        value = uninitialized()
        assert not value.initialized
        assert not value.tainted

    def test_with_taint(self):
        value = int_value(5).with_taint(True)
        assert value.tainted and value.data == 5
        # immutable: the original is untouched
        assert not int_value(5).tainted

    def test_repr_markers(self):
        assert "🔥" in repr(int_value(1, tainted=True))
        assert "?" in repr(uninitialized())
        assert repr(int_value(3)) == "3"


class TestObjectRef:
    def test_fields_are_per_object(self):
        a, b = ObjectRef("Box"), ObjectRef("Box")
        a.fields["v"] = int_value(1)
        assert "v" not in b.fields

    def test_class_name(self):
        assert ObjectRef("Widget").class_name == "Widget"

    def test_repr(self):
        assert "Widget" in repr(ObjectRef("Widget"))

    def test_value_wrapping_object_not_null(self):
        value = Value(ObjectRef("Box"))
        assert not value.is_null
