"""Property: executing the SPL under c ≡ executing preprocess(c).

This ties three substrates together: the preprocessor, the lowering, and
the interpreter's feature-sensitive skipping must all agree on what a
configuration means.  Checked on random generated subjects across all
valid configurations and several nondet schedules.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import Interpreter
from repro.ir import lower_program
from repro.minijava import derive_product
from repro.spl.generator import SubjectSpec, generate_subject


def observable(trace):
    return (
        trace.printed_data(),
        [value.tainted for _, value in trace.prints],
        trace.completed,
    )


def run_pair(product_line, config, seed):
    spl_rng = random.Random(seed)
    product_rng = random.Random(seed)
    spl_trace = Interpreter(
        product_line.ir,
        configuration=config,
        fuel=20_000,
        nondet_source=lambda: spl_rng.randrange(8),
    ).run()
    product_ir = lower_program(derive_product(product_line.ast, config))
    product_trace = Interpreter(
        product_ir,
        fuel=20_000,
        nondet_source=lambda: product_rng.randrange(8),
    ).run()
    return spl_trace, product_trace


@given(
    subject_seed=st.integers(min_value=0, max_value=2_000),
    schedule_seed=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_spl_execution_equals_product_execution(subject_seed, schedule_seed):
    spec = SubjectSpec(
        name=f"equiv-{subject_seed}",
        seed=subject_seed,
        classes=3,
        methods_per_class=(2, 3),
        statements_per_method=(3, 7),
        annotation_density=0.4,
        entry_fanout=4,
        reachable_features=("A", "B"),
        source_density=0.4,
        sink_density=0.8,
        uninit_density=0.3,
    )
    product_line = generate_subject(spec)
    for config in product_line.valid_configurations():
        spl_trace, product_trace = run_pair(product_line, config, schedule_seed)
        assert observable(spl_trace) == observable(product_trace), sorted(config)


def test_figure1_equivalence_exhaustive():
    from repro.spl import figure1

    product_line = figure1()
    for config in product_line.valid_configurations():
        spl_trace, product_trace = run_pair(product_line, config, 0)
        assert observable(spl_trace) == observable(product_trace)


def test_uninit_reads_equivalent_counts():
    """Uninit-read *sets* also agree between SPL and product execution
    (locations differ — different IR — so compare (method, name) pairs)."""
    from repro.spl import device_spl

    product_line = device_spl()
    for config in product_line.valid_configurations():
        spl_trace, product_trace = run_pair(product_line, config, 1)
        spl_events = {
            (stmt.method.qualified_name, name)
            for stmt, name in spl_trace.uninit_reads
        }
        product_events = {
            (stmt.method.qualified_name, name)
            for stmt, name in product_trace.uninit_reads
        }
        assert spl_events == product_events, sorted(config)
