"""Differential testing: static may-analyses vs. concrete executions.

Soundness, checked end to end: whatever actually happens in *some*
execution of *some* product must be predicted by the static analyses —

- every runtime-tainted ``print`` must be a taint-analysis hit (for A2 on
  the executed configuration, and for SPLLIFT with a constraint admitting
  it);
- every runtime read of an uninitialized local must be flagged by the
  uninitialized-variables analysis at that statement.

Executions and analyses share IR instruction identities, so events line
up exactly.  Multiple ``nondet()`` schedules drive different paths.
"""

import random

import pytest

from repro.analyses import (
    LocalFact,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines import solve_a2
from repro.core import SPLLift
from repro.interp import Interpreter
from repro.spl import device_spl, figure1
from repro.spl.generator import SubjectSpec, generate_subject

NONDET_SCHEDULES = {
    "zeros": lambda: (lambda: 0),
    "ones": lambda: (lambda: 1),
    "random": lambda: random.Random(1234).randrange,
}


def schedules():
    yield "zeros", lambda: 0
    yield "ones", lambda: 1
    rng = random.Random(99)
    yield "random", lambda: rng.randrange(10)


def execute(product_line, config, nondet):
    interpreter = Interpreter(
        product_line.ir, configuration=config, fuel=50_000, nondet_source=nondet
    )
    return interpreter.run()


def check_taint_soundness(product_line, configs):
    analysis = TaintAnalysis(product_line.icfg)
    lifted = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    features = product_line.features_reachable
    for config in configs:
        a2_results = solve_a2(analysis, config)
        for _, nondet in schedules():
            trace = execute(product_line, config, nondet)
            # deduplicate: loops can produce the same event thousands of
            # times, and one check per (statement, fact) suffices
            events = {stmt for stmt, _ in trace.tainted_prints}
            for stmt in sorted(events, key=lambda s: s.location):
                fact = LocalFact(stmt.value.name)
                assert fact in a2_results.at(stmt), (
                    "A2 missed a runtime taint",
                    stmt.location,
                    sorted(config),
                )
                assert lifted.holds_in(stmt, fact, config, over=features), (
                    "SPLLIFT missed a runtime taint",
                    stmt.location,
                    sorted(config),
                )


def check_uninit_soundness(product_line, configs):
    analysis = UninitializedVariablesAnalysis(product_line.icfg)
    lifted = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    features = product_line.features_reachable
    for config in configs:
        a2_results = solve_a2(analysis, config)
        for _, nondet in schedules():
            trace = execute(product_line, config, nondet)
            events = set(trace.uninit_reads)
            for stmt, name in sorted(events, key=lambda e: (e[0].location, e[1])):
                fact = LocalFact(name)
                assert fact in a2_results.at(stmt), (
                    "A2 missed a runtime uninitialized read",
                    stmt.location,
                    name,
                    sorted(config),
                )
                assert lifted.holds_in(stmt, fact, config, over=features), (
                    "SPLLIFT missed a runtime uninitialized read",
                    stmt.location,
                    name,
                    sorted(config),
                )


class TestHandWrittenSubjects:
    def test_figure1_taint(self):
        product_line = figure1()
        check_taint_soundness(
            product_line, list(product_line.valid_configurations())
        )

    def test_device_taint(self):
        product_line = device_spl()
        check_taint_soundness(
            product_line, list(product_line.valid_configurations())
        )

    def test_device_uninit(self):
        product_line = device_spl()
        check_uninit_soundness(
            product_line, list(product_line.valid_configurations())
        )


class TestGeneratedSubjects:
    @pytest.mark.parametrize("seed", [5, 17, 23, 41])
    def test_generated_taint_and_uninit(self, seed):
        spec = SubjectSpec(
            name=f"diff-{seed}",
            seed=seed,
            classes=4,
            methods_per_class=(2, 3),
            statements_per_method=(4, 8),
            annotation_density=0.35,
            entry_fanout=5,
            reachable_features=("A", "B", "C"),
            source_density=0.5,
            sink_density=0.8,
            uninit_density=0.4,
        )
        product_line = generate_subject(spec)
        configs = list(product_line.valid_configurations())
        check_taint_soundness(product_line, configs)
        check_uninit_soundness(product_line, configs)

    @pytest.mark.parametrize("seed", [2, 6, 9])
    def test_executions_actually_observe_events(self, seed):
        """Guard against vacuous soundness checks: across the generated
        subjects and schedules, at least some runs must produce events."""
        spec = SubjectSpec(
            name=f"events-{seed}",
            seed=seed,
            classes=4,
            entry_fanout=6,
            annotation_density=0.3,
            reachable_features=("A", "B"),
            source_density=0.9,
            sink_density=0.9,
            uninit_density=0.8,
        )
        product_line = generate_subject(spec)
        total_events = 0
        for config in product_line.valid_configurations():
            for _, nondet in schedules():
                trace = execute(product_line, config, nondet)
                total_events += len(trace.prints) + len(trace.uninit_reads)
        assert total_events > 0
