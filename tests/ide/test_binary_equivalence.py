"""Section 2.4: IFDS embeds into IDE over the binary domain.

The direct tabulation solver and the IDE solver (binary domain) must
compute identical fact sets on every statement, for every analysis, on
hand-written and generated programs alike.
"""

import pytest

from repro.analyses import (
    NullnessAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.ide.binary import solve_ifds_via_ide
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import derive_product, parse_program
from repro.spl.examples import DEVICE_SOURCE, FIGURE1_SOURCE
from repro.spl.generator import SubjectSpec, generate_subject

ANALYSES = [
    TaintAnalysis,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
    NullnessAnalysis,
]


def assert_equivalent(icfg, analysis_class):
    problem = analysis_class(icfg)
    ifds_results = IFDSSolver(problem).solve()
    ide_results = solve_ifds_via_ide(problem)
    for stmt in icfg.reachable_instructions():
        ifds_facts = ifds_results.at(stmt)
        ide_facts = frozenset(ide_results.results_at(stmt))
        assert ifds_facts == ide_facts, (
            stmt.location,
            ifds_facts ^ ide_facts,
        )


@pytest.mark.parametrize("analysis_class", ANALYSES)
@pytest.mark.parametrize(
    "config", [set(), {"G"}, {"F", "G"}, {"F", "G", "H"}]
)
def test_equivalence_on_figure1_products(analysis_class, config):
    product = derive_product(parse_program(FIGURE1_SOURCE), config)
    icfg = ICFG.for_entry(lower_program(product))
    assert_equivalent(icfg, analysis_class)


@pytest.mark.parametrize("analysis_class", ANALYSES)
def test_equivalence_on_device_products(analysis_class):
    program = parse_program(DEVICE_SOURCE)
    for config in ({"Buffering", "Secure"}, {"Checksum"}, set()):
        product = derive_product(program, config)
        icfg = ICFG.for_entry(lower_program(product))
        assert_equivalent(icfg, analysis_class)


@pytest.mark.parametrize("analysis_class", ANALYSES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_equivalence_on_generated_programs(analysis_class, seed):
    spec = SubjectSpec(
        name=f"equiv{seed}",
        seed=seed,
        classes=4,
        entry_fanout=5,
        annotation_density=0.0,  # plain programs: no annotations
        reachable_features=("A", "B"),
    )
    product_line = generate_subject(spec)
    assert_equivalent(product_line.icfg, analysis_class)
