"""Tests for the method-summary codec (repro.ide.summaries).

Covers the fact codec, the strict constraint decode used for summary
records, and the fail-open contract: truncated, mis-keyed or otherwise
malformed records must decode to a *miss* (``None`` / dropped context),
never to an exception or — worse — to a wrong fixed point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
)
from repro.analyses.facts import (
    DefFact,
    FieldFact,
    LocalFact,
    TypedField,
    TypedLocal,
)
from repro.analyses.typestate import TypestateFact
from repro.constraints.bddsystem import BddConstraintSystem
from repro.constraints.serialize import (
    ConstraintCodecError,
    decode_constraints,
    encode_constraints,
)
from repro.core import SPLLift
from repro.ide.solver import IDESolver
from repro.ide.summaries import (
    SUMMARY_SCHEMA,
    SummaryCodecError,
    decode_fact,
    encode_fact,
    problem_key_for,
    summary_cache_for,
    summary_record_key,
)
from repro.ifds.problem import ZERO
from repro.ir.digest import method_local_digest
from repro.service import ResultStore
from repro.spl import gpl_mini

VARS = ("A", "B", "C", "D")


def _terms():
    base = st.sampled_from(VARS)

    def build(system, spec):
        kind = spec[0]
        if kind == "var":
            return system.var(spec[1])
        if kind == "not":
            return ~build(system, spec[1])
        left, right = build(system, spec[1]), build(system, spec[2])
        return (left & right) if kind == "and" else (left | right)

    spec = st.recursive(
        base.map(lambda name: ("var", name)),
        lambda children: st.one_of(
            children.map(lambda c: ("not", c)),
            st.tuples(children, children).map(lambda t: ("and", *t)),
            st.tuples(children, children).map(lambda t: ("or", *t)),
        ),
        max_leaves=8,
    )
    return spec, build


SPEC, BUILD = _terms()


def _armed_pair(tmp_path, analysis_cls=PossibleTypesAnalysis):
    """A populated store plus a *fresh* attached cache over the same
    program — the receiver side of a warm solve, ready for decode
    experiments."""
    store = ResultStore(tmp_path / "store")
    product_line = gpl_mini()

    spllift = SPLLift(
        analysis_cls(product_line.icfg),
        feature_model=product_line.feature_model,
    )
    cold = spllift.solve(summaries=summary_cache_for(spllift, store))

    warm_lift = SPLLift(
        analysis_cls(product_line.icfg),
        feature_model=product_line.feature_model,
    )
    cache = summary_cache_for(warm_lift, store)
    receiver = IDESolver(warm_lift.problem, summaries=cache)
    cache.attach(receiver)
    assert cache._active
    return store, cache, cold


def _some_record(store, min_contexts=1):
    """Any summary record with at least ``min_contexts`` contexts."""
    for record in store.iter_records():
        if (
            record.get("schema") == SUMMARY_SCHEMA
            and len(record["contexts"]) >= min_contexts
        ):
            return record
    return None


def _method_for(cache, record):
    for method, digest in cache._digest_of.items():
        if digest == record["method_digest"]:
            return method
    raise AssertionError(f"no live method for {record['method']}")


class TestFactCodec:
    def test_simple_facts_round_trip(self):
        for fact in (
            ZERO,
            LocalFact("x"),
            FieldFact("Device", "buffer"),
            TypedLocal("v", "Node"),
            TypedField("Graph", "head", "Node"),
            TypestateFact("conn", "open"),
        ):
            assert decode_fact(encode_fact(fact, {}), {}) == fact

    def test_def_fact_round_trip_uses_local_digest(self):
        product_line = gpl_mini()
        method = next(
            m
            for m in product_line.icfg.call_graph.reachable_methods
            if m.instructions
        )
        digest = method_local_digest(method)
        fact = DefFact("x", method.instructions[0])
        document = encode_fact(fact, {method: digest})
        assert document[:2] == ["def", "x"]
        assert document[2] == digest  # keyed by the *local* digest
        assert decode_fact(document, {digest: method}) == fact

    def test_def_fact_unknown_site_digest_rejected(self):
        with pytest.raises(SummaryCodecError):
            decode_fact(["def", "x", "no-such-digest", 0], {})

    def test_def_fact_site_index_out_of_range_rejected(self):
        product_line = gpl_mini()
        method = next(
            iter(product_line.icfg.call_graph.reachable_methods)
        )
        digest = method_local_digest(method)
        for index in (-1, len(method.instructions), "0"):
            with pytest.raises(SummaryCodecError):
                decode_fact(["def", "x", digest, index], {digest: method})

    def test_malformed_documents_rejected(self):
        for document in ([], ["wat"], ["local"], ["zero", "extra"], "zero", 7):
            with pytest.raises(SummaryCodecError):
                decode_fact(document, {})


class TestRecordKeys:
    def test_problem_key_distinguishes_analyses(self):
        product_line = gpl_mini()
        keys = {
            problem_key_for(
                SPLLift(
                    cls(product_line.icfg),
                    feature_model=product_line.feature_model,
                ).problem
            )
            for cls in (PossibleTypesAnalysis, ReachingDefinitionsAnalysis)
        }
        assert len(keys) == 2

    def test_record_key_depends_on_both_halves(self):
        assert summary_record_key("p1", "d1") != summary_record_key("p1", "d2")
        assert summary_record_key("p1", "d1") != summary_record_key("p2", "d1")


class TestStrictConstraintDecode:
    @given(specs=st.lists(SPEC, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_summary_edge_constraints_round_trip(self, specs):
        """The property the record codec rests on: a batch of summary
        edge constraints survives encode → fresh manager → decode as
        semantically equal functions, under the strict (declared-vars
        only) decode the warm path uses."""
        sender = BddConstraintSystem()
        for name in VARS:
            sender.var(name)
        batch = [BUILD(sender, spec) for spec in specs]
        document = encode_constraints(sender, batch)

        receiver = BddConstraintSystem()
        for name in VARS:
            receiver.var(name)
        decoded = decode_constraints(
            receiver, document, require_declared_vars=True
        )
        rebuilt = [BUILD(receiver, spec) for spec in specs]
        assert decoded == rebuilt

    def test_undeclared_variable_rejected_in_strict_mode(self):
        sender = BddConstraintSystem()
        constraint = sender.var("Zonk")
        document = encode_constraints(sender, [constraint])
        receiver = BddConstraintSystem()
        receiver.var("A")
        with pytest.raises(ConstraintCodecError):
            decode_constraints(receiver, document, require_declared_vars=True)
        # The permissive mode (cross-process result shipping) still works.
        assert decode_constraints(receiver, document) == [receiver.var("Zonk")]


class TestRecordRejection:
    """Tampered records must decode as misses, never raise or inject."""

    def test_intact_record_decodes(self, tmp_path):
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        entries = cache._decode_record(method, record)
        assert entries  # at least one context

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        assert (
            cache._decode_record(method, {**record, "schema": "bogus/v9"})
            is None
        )

    def test_mis_keyed_method_is_a_miss(self, tmp_path):
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        assert (
            cache._decode_record(
                method, {**record, "method": "Other.method"}
            )
            is None
        )
        assert (
            cache._decode_record(
                method, {**record, "method_digest": "0" * 64}
            )
            is None
        )

    def test_truncated_record_is_a_miss(self, tmp_path):
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        for field in ("constraints", "facts", "contexts"):
            truncated = dict(record)
            del truncated[field]
            assert cache._decode_record(method, truncated) is None

    def test_dangling_constraint_root_is_a_miss(self, tmp_path):
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        tampered = dict(record)
        tampered["constraints"] = {
            **record["constraints"],
            "roots": list(record["constraints"]["roots"]) + [10 ** 9],
        }
        assert cache._decode_record(method, tampered) is None

    def test_negative_ref_never_aliases(self, tmp_path):
        """A corrupt negative table ref must fail the context, not read
        the table's tail through Python's negative indexing."""
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store)
        method = _method_for(cache, record)
        tampered = dict(record)
        tampered["contexts"] = [
            {**context, "entry": -1} for context in record["contexts"]
        ]
        assert cache._decode_record(method, tampered) is None

    def test_bad_context_dropped_alone(self, tmp_path):
        """One undecodable context leaves the record's other contexts
        injectable (per-context fail-open)."""
        store, cache, _ = _armed_pair(tmp_path)
        record = _some_record(store, min_contexts=2)
        if record is None:
            pytest.skip("no multi-context record in this subject")
        method = _method_for(cache, record)
        intact = cache._decode_record(method, record)
        tampered = dict(record)
        tampered["contexts"] = [
            {**record["contexts"][0], "entry": -1}
        ] + record["contexts"][1:]
        partial = cache._decode_record(method, tampered)
        assert partial is not None
        assert len(partial) == len(intact) - 1
