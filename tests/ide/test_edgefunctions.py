"""Tests for the generic edge functions and the constraint edge algebra."""

import pytest

from repro.constraints import BddConstraintSystem
from repro.core.lifting import ConstraintEdge
from repro.ide import AllTop, IdentityEdge
from repro.ide.edgefunctions import _ACTIVE_DELEGATIONS, EdgeFunction


@pytest.fixture
def system():
    return BddConstraintSystem()


class TestGenericEdgeFunctions:
    def test_identity(self):
        identity = IdentityEdge()
        assert identity.compute_target("v") == "v"
        assert identity.compose_with(AllTop(False)).equal_to(AllTop(False))
        assert identity.equal_to(IdentityEdge())

    def test_all_top(self):
        all_top = AllTop(False)
        assert all_top.compute_target(True) is False
        assert all_top.compose_with(IdentityEdge()) is all_top
        assert all_top.join_with(IdentityEdge()).equal_to(IdentityEdge())
        assert all_top.equal_to(AllTop(False))
        assert not all_top.equal_to(IdentityEdge())

    def test_identity_join_with_all_top(self):
        identity = IdentityEdge()
        assert identity.join_with(AllTop(False)).equal_to(identity)


class _DelegatingEdge(EdgeFunction):
    """A foreign edge function that bounces join/equality back to the
    other operand — the pattern that used to send ``IdentityEdge`` into
    infinite mutual recursion."""

    def compute_target(self, source):
        return source

    def compose_with(self, second):
        return second

    def join_with(self, other):
        return other.join_with(self)

    def equal_to(self, other):
        return other.equal_to(self)


class TestMutualDelegation:
    """Regression: IdentityEdge delegating to a function that delegates
    straight back must terminate instead of raising RecursionError."""

    def test_join_raises_type_error_not_recursion(self):
        with pytest.raises(TypeError, match="delegate the join"):
            IdentityEdge().join_with(_DelegatingEdge())

    def test_equality_is_conservatively_false(self):
        assert IdentityEdge().equal_to(_DelegatingEdge()) is False

    def test_guard_state_is_cleaned_up(self):
        identity, foreign = IdentityEdge(), _DelegatingEdge()
        identity.equal_to(foreign)
        with pytest.raises(TypeError):
            identity.join_with(foreign)
        assert not _ACTIVE_DELEGATIONS

    def test_delegation_to_cooperative_function_still_works(self):
        """The guard must not break legitimate delegation: a foreign
        function that *answers* the join keeps working."""

        class _Answering(_DelegatingEdge):
            def join_with(self, other):
                return self

            def equal_to(self, other):
                return isinstance(other, _Answering)

        answering = _Answering()
        assert IdentityEdge().join_with(answering) is answering


class TestConstraintEdge:
    def test_compute_target_conjoins(self, system):
        f = system.var("F")
        edge = ConstraintEdge(f)
        assert edge.compute_target(system.true) == f
        assert edge.compute_target(~f).is_false

    def test_compose_conjoins(self, system):
        f, g = system.var("F"), system.var("G")
        composed = ConstraintEdge(f).compose_with(ConstraintEdge(g))
        assert isinstance(composed, ConstraintEdge)
        assert composed.constraint == (f & g)

    def test_join_disjoins(self, system):
        f, g = system.var("F"), system.var("G")
        joined = ConstraintEdge(f).join_with(ConstraintEdge(g))
        assert joined.constraint == (f | g)

    def test_contradiction_equals_all_top(self, system):
        f = system.var("F")
        contradiction = ConstraintEdge(f).compose_with(ConstraintEdge(~f))
        assert contradiction.equal_to(AllTop(system.false))

    def test_compose_with_all_top_is_all_top(self, system):
        all_top = AllTop(system.false)
        result = ConstraintEdge(system.var("F")).compose_with(all_top)
        assert result is all_top

    def test_join_with_all_top_is_self(self, system):
        edge = ConstraintEdge(system.var("F"))
        assert edge.join_with(AllTop(system.false)) is edge

    def test_equality_is_constraint_equality(self, system):
        f, g = system.var("F"), system.var("G")
        lhs = ConstraintEdge(~(f & g))
        rhs = ConstraintEdge((~f) | (~g))
        assert lhs.equal_to(rhs)  # canonical BDDs: same function, equal

    def test_paper_section_3_4_composition(self, system):
        """Constraints along a path conjoin; merge points disjoin."""
        f, g, h = system.var("F"), system.var("G"), system.var("H")
        path1 = (
            ConstraintEdge(system.true)
            .compose_with(ConstraintEdge(~f))
            .compose_with(ConstraintEdge(g))
            .compose_with(ConstraintEdge(~h))
        )
        path2 = ConstraintEdge(system.false)
        merged = path1.join_with(path2)
        assert merged.constraint == system.parse("!F && G && !H")

    def test_algebra_is_closed(self, system):
        """compose/join of λc.c∧A functions stay in the family — the
        property that makes the lifting encodable in IDE (Section 8)."""
        edges = [
            ConstraintEdge(system.var("F")),
            ConstraintEdge(~system.var("G")),
            ConstraintEdge(system.true),
            ConstraintEdge(system.false),
        ]
        for left in edges:
            for right in edges:
                assert isinstance(left.compose_with(right), ConstraintEdge)
                assert isinstance(left.join_with(right), ConstraintEdge)

    def test_type_errors(self, system):
        edge = ConstraintEdge(system.var("F"))
        with pytest.raises(TypeError):
            edge.compose_with(IdentityEdge())
        with pytest.raises(TypeError):
            edge.join_with(IdentityEdge())
