"""End-to-end tests for incremental re-analysis (summary reuse).

The contract under test is the hard one from the design: a warm solve
through a summary store is **bit-identical** to a cold solve of the same
source — with no edit, after a one-method edit, for every paper
analysis, and in the presence of corrupted store records (which must
degrade to recomputation, never to wrong results).
"""

import pytest

from repro.analyses import PAPER_ANALYSES, TypestateAnalysis
from repro.constraints.dnf import DnfConstraintSystem
from repro.core import SPLLift
from repro.ide.summaries import SUMMARY_SCHEMA, summary_cache_for
from repro.service import ResultStore
from repro.spl import gpl_mini
from repro.spl.edits import EDIT_LOCAL, edited_product_line

ANALYSIS_CLASSES = [cls for _, cls in PAPER_ANALYSES]


def _solve(product_line, analysis_cls, store=None, **kwargs):
    spllift = SPLLift(
        analysis_cls(product_line.icfg),
        feature_model=product_line.feature_model,
    )
    summaries = (
        summary_cache_for(spllift, store) if store is not None else None
    )
    return spllift.solve(summaries=summaries, **kwargs)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "summaries")


class TestNoEditWarm:
    @pytest.mark.parametrize("analysis_cls", ANALYSIS_CLASSES)
    def test_full_reuse_and_bit_identity(self, store, analysis_cls):
        cold = _solve(gpl_mini(), analysis_cls)
        populate = _solve(gpl_mini(), analysis_cls, store)
        assert populate.result_digest() == cold.result_digest()

        warm = _solve(gpl_mini(), analysis_cls, store)
        assert warm.result_digest() == cold.result_digest()
        assert warm.stats["summaries_invalidated"] == 0
        assert warm.stats["summaries_recomputed"] == 0
        assert warm.stats["summaries_reused"] > 0


class TestEditedWarm:
    @pytest.mark.parametrize("analysis_cls", ANALYSIS_CLASSES)
    def test_bit_identity_after_one_method_edit(self, store, analysis_cls):
        _solve(gpl_mini(), analysis_cls, store)  # populate from pristine

        edited, target, dirty = edited_product_line(gpl_mini())
        assert EDIT_LOCAL in edited.source
        cold = _solve(edited, analysis_cls)

        fresh_edit, _, _ = edited_product_line(gpl_mini())
        warm = _solve(fresh_edit, analysis_cls, store)
        assert warm.result_digest() == cold.result_digest()
        assert warm.stats["summaries_reused"] > 0
        # Exactly the dirty closure (the edited method plus transitive
        # callers) misses; every clean method's record is usable.
        assert warm.stats["summaries_invalidated"] == dirty

    def test_reuse_ratio_on_single_edit(self, store):
        analysis_cls = ANALYSIS_CLASSES[0]
        _solve(gpl_mini(), analysis_cls, store)
        fresh_edit, _, _ = edited_product_line(gpl_mini())
        warm = _solve(fresh_edit, analysis_cls, store)
        reused = warm.stats["summaries_reused"]
        recomputed = warm.stats["summaries_recomputed"]
        assert reused / max(1, reused + recomputed) >= 0.8

    def test_second_warm_solve_fully_reuses(self, store):
        """The warm solve harvests the recomputed methods back, so a
        second identical re-solve is a 0-edit solve: nothing misses."""
        analysis_cls = ANALYSIS_CLASSES[0]
        _solve(gpl_mini(), analysis_cls, store)
        fresh_edit, _, _ = edited_product_line(gpl_mini())
        first = _solve(fresh_edit, analysis_cls, store)
        assert first.stats["summaries_invalidated"] > 0

        again, _, _ = edited_product_line(gpl_mini())
        second = _solve(again, analysis_cls, store)
        assert second.stats["summaries_invalidated"] == 0
        assert second.stats["summaries_recomputed"] == 0
        assert second.result_digest() == first.result_digest()


class TestIsolationAndFailOpen:
    def test_records_do_not_cross_analyses(self, store):
        """Summaries are keyed by problem identity: a store populated by
        one analysis serves nothing to another — and must not corrupt
        its results."""
        pt_cls, rd_cls = ANALYSIS_CLASSES[0], ANALYSIS_CLASSES[1]
        _solve(gpl_mini(), pt_cls, store)
        cold = _solve(gpl_mini(), rd_cls)
        warm = _solve(gpl_mini(), rd_cls, store)
        assert warm.result_digest() == cold.result_digest()
        assert warm.stats["summaries_reused"] == 0

    def test_corrupted_record_degrades_to_recompute(self, store):
        analysis_cls = ANALYSIS_CLASSES[0]
        cold = _solve(gpl_mini(), analysis_cls, store)
        # Vandalize one stored record in place: swap its fact table for
        # garbage refs while keeping the key (digest) intact.
        victim = next(
            record
            for record in store.iter_records()
            if record.get("schema") == SUMMARY_SCHEMA
        )
        victim["facts"] = []
        store.put(victim)

        warm = _solve(gpl_mini(), analysis_cls, store)
        assert warm.result_digest() == cold.result_digest()
        assert warm.stats["summaries_invalidated"] >= 1
        assert warm.stats["summaries_reused"] > 0

    def test_typestate_protocol_keys_and_round_trips(self, store):
        """Typestate facts (protocol-parameterized) survive the summary
        codec, and records are keyed per protocol."""
        product_line = gpl_mini()

        def solve_typestate(pl, with_store):
            spllift = SPLLift(
                TypestateAnalysis(pl.icfg),
                feature_model=pl.feature_model,
            )
            summaries = (
                summary_cache_for(spllift, store) if with_store else None
            )
            return spllift.solve(summaries=summaries)

        cold = solve_typestate(product_line, with_store=False)
        solve_typestate(gpl_mini(), with_store=True)
        warm = solve_typestate(gpl_mini(), with_store=True)
        assert warm.result_digest() == cold.result_digest()
        assert warm.stats["summaries_invalidated"] == 0

    def test_non_bdd_problem_detaches(self, store):
        """A DNF-backed lifted problem has no canonical node codec; the
        cache must detach and leave the solve untouched."""
        product_line = gpl_mini()
        analysis_cls = ANALYSIS_CLASSES[0]

        def solve_dnf(with_store):
            pl = gpl_mini()
            spllift = SPLLift(
                analysis_cls(pl.icfg),
                system=DnfConstraintSystem(),
                feature_model=None,
            )
            summaries = (
                summary_cache_for(spllift, store) if with_store else None
            )
            return spllift.solve(summaries=summaries)

        cold = solve_dnf(with_store=False)
        armed = solve_dnf(with_store=True)
        assert armed.result_digest() == cold.result_digest()
        assert armed.stats["summaries_reused"] == 0
        assert armed.stats["summaries_recomputed"] == 0
        assert list(store.iter_records()) == []  # nothing harvested

    def test_armed_solve_forces_sequential(self, store):
        """``parallel`` is ignored when summaries are armed — injection
        rewires one solver's tables and does not compose with the
        by-seed partitioning."""
        analysis_cls = ANALYSIS_CLASSES[0]
        cold = _solve(gpl_mini(), analysis_cls)
        warm = _solve(gpl_mini(), analysis_cls, store, parallel=2)
        assert warm.stats["parallel_workers"] == 1
        assert warm.result_digest() == cold.result_digest()
