"""Tests for the MiniJava parser, including #ifdef handling."""

import pytest

from repro.constraints.formula import And, Not, Or, Var
from repro.minijava import ParseError, parse_program
from repro.minijava.ast import (
    AssignStmt,
    Binary,
    Call,
    ExprStmt,
    FieldAccess,
    IfStmt,
    IntLit,
    New,
    PrintStmt,
    ReturnStmt,
    VarDecl,
    VarRef,
    WhileStmt,
)


def parse_main_body(body: str):
    program = parse_program(f"class Main {{ void main() {{ {body} }} }}")
    return program.classes[0].methods[0].body.statements


class TestDeclarations:
    def test_class_with_extends(self):
        program = parse_program("class A {} class B extends A {}")
        assert program.classes[1].superclass == "A"

    def test_fields_and_methods(self):
        program = parse_program(
            """
            class A {
                int f;
                A next;
                int m(int x, boolean b) { return x; }
                void n() { }
            }
            """
        )
        cls = program.classes[0]
        assert [f.name for f in cls.fields] == ["f", "next"]
        assert cls.fields[1].type.name == "A"
        assert [m.name for m in cls.methods] == ["m", "n"]
        assert cls.methods[0].param_names == ("x", "b")
        assert cls.methods[0].return_type.name == "int"

    def test_class_lookup(self):
        program = parse_program("class A {} class B {}")
        assert program.class_named("B").name == "B"
        assert program.has_class("A")
        with pytest.raises(KeyError):
            program.class_named("C")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_main_body("int x = 1;")
        assert isinstance(stmt, VarDecl)
        assert stmt.name == "x"
        assert isinstance(stmt.init, IntLit)

    def test_var_decl_class_type(self):
        (stmt,) = parse_main_body("A a = new A();")
        assert stmt.type.name == "A"
        assert isinstance(stmt.init, New)

    def test_assignment(self):
        stmts = parse_main_body("int x = 0; x = 2;")
        assert isinstance(stmts[1], AssignStmt)
        assert isinstance(stmts[1].target, VarRef)

    def test_field_assignment(self):
        (stmt,) = parse_main_body("this.f = 1;")
        assert isinstance(stmt.target, FieldAccess)

    def test_if_else(self):
        (stmt,) = parse_main_body("if (x < 1) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, IfStmt)
        assert stmt.else_block is not None

    def test_while(self):
        (stmt,) = parse_main_body("while (x < 10) { x = x + 1; }")
        assert isinstance(stmt, WhileStmt)

    def test_return_forms(self):
        stmts = parse_main_body("return; ")
        assert isinstance(stmts[0], ReturnStmt)
        assert stmts[0].value is None
        (stmt,) = parse_main_body("return x + 1;")
        assert isinstance(stmt.value, Binary)

    def test_print(self):
        (stmt,) = parse_main_body("print(x);")
        assert isinstance(stmt, PrintStmt)

    def test_call_statement(self):
        (stmt,) = parse_main_body("foo(1, 2);")
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, Call)
        assert stmt.expr.receiver is None

    def test_method_call_on_receiver(self):
        (stmt,) = parse_main_body("o.m(1);")
        assert stmt.expr.method == "m"

    def test_line_numbers(self):
        stmts = parse_main_body("int x = 1;\nint y = 2;")
        assert stmts[1].line == stmts[0].line + 1


class TestExpressions:
    def test_precedence(self):
        (stmt,) = parse_main_body("int x = 1 + 2 * 3;")
        assert stmt.init.op == "+"
        assert stmt.init.right.op == "*"

    def test_comparison_precedence(self):
        (stmt,) = parse_main_body("boolean b = 1 + 2 < 4;")
        assert stmt.init.op == "<"

    def test_logical_operators(self):
        (stmt,) = parse_main_body("boolean b = x < 1 && y < 2 || z < 3;")
        assert stmt.init.op == "||"

    def test_chained_field_and_call(self):
        (stmt,) = parse_main_body("int x = a.b.m(1).f;")  # parses as postfix chain
        assert isinstance(stmt.init, FieldAccess)
        assert isinstance(stmt.init.receiver, Call)

    def test_parenthesized(self):
        (stmt,) = parse_main_body("int x = (1 + 2) * 3;")
        assert stmt.init.op == "*"

    def test_unary(self):
        (stmt,) = parse_main_body("int x = -y;")
        assert stmt.init.op == "-"


class TestIfdef:
    def test_simple_annotation(self):
        stmts = parse_main_body("#ifdef (F) x = 1; #endif")
        assert stmts[0].annotation == Var("F")

    def test_annotation_covers_multiple_statements(self):
        stmts = parse_main_body("#ifdef (F) x = 1; y = 2; #endif")
        assert [s.annotation for s in stmts] == [Var("F"), Var("F")]

    def test_else_branch_negates(self):
        stmts = parse_main_body("#ifdef (F) x = 1; #else x = 2; #endif")
        assert stmts[0].annotation == Var("F")
        assert stmts[1].annotation == Not(Var("F"))

    def test_nesting_conjoins(self):
        stmts = parse_main_body(
            "#ifdef (F) #ifdef (G) x = 1; #endif #endif"
        )
        assert stmts[0].annotation == And((Var("F"), Var("G")))

    def test_complex_condition(self):
        stmts = parse_main_body("#ifdef (F && !G || H) x = 1; #endif")
        annotation = stmts[0].annotation
        assert isinstance(annotation, Or)

    def test_condition_with_implication(self):
        stmts = parse_main_body("#ifdef (F -> G) x = 1; #endif")
        assert stmts[0].annotation is not None

    def test_annotated_members(self):
        program = parse_program(
            """
            class A {
                #ifdef (F)
                int f;
                int m() { return 1; }
                #endif
            }
            """
        )
        cls = program.classes[0]
        assert cls.fields[0].annotation == Var("F")
        assert cls.methods[0].annotation == Var("F")

    def test_annotated_member_else(self):
        program = parse_program(
            """
            class A {
                #ifdef (F)
                int m() { return 1; }
                #else
                int n() { return 2; }
                #endif
            }
            """
        )
        cls = program.classes[0]
        assert cls.methods[0].annotation == Var("F")
        assert cls.methods[1].annotation == Not(Var("F"))

    def test_annotation_wraps_compound_statement(self):
        stmts = parse_main_body(
            "#ifdef (F) if (x < 1) { y = 1; } #endif"
        )
        assert isinstance(stmts[0], IfStmt)
        assert stmts[0].annotation == Var("F")
        # inner statements carry no direct annotation; nesting is implicit
        assert stmts[0].then_block.statements[0].annotation is None


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class",
            "class A",
            "class A {",
            "class A { int }",
            "class A { int m( { } }",
            "class Main { void main() { 1 = x; } }",
            "class Main { void main() { x + 1; } }",  # not a call
            "class Main { void main() { #ifdef (F) x = 1; } }",  # no #endif
            "class Main { void main() { if x { } } }",
            "class Main { void main() { return 1 } }",  # missing ;
        ],
    )
    def test_parse_errors(self, source):
        with pytest.raises(ParseError):
            parse_program(source)
