"""Tests for the MiniJava lexer."""

import pytest

from repro.minijava.lexer import LexError, Token, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)]


class TestLexer:
    def test_empty_source_has_eof(self):
        tokens = tokenize("")
        assert tokens[-1].kind == "eof"
        assert len(tokens) == 1

    def test_keywords_vs_identifiers(self):
        assert kinds_and_texts("class Foo")[:-1] == [
            ("keyword", "class"),
            ("ident", "Foo"),
        ]

    def test_integers(self):
        assert kinds_and_texts("42 007")[:-1] == [("int", "42"), ("int", "007")]

    def test_operators_maximal_munch(self):
        texts = [t.text for t in tokenize("a<=b == c != d <-> e -> f")]
        assert "<=" in texts and "==" in texts and "!=" in texts
        assert "<->" in texts and "->" in texts

    def test_directives(self):
        texts = [t.text for t in tokenize("#ifdef (F) x = 0; #else y = 1; #endif")]
        assert "#ifdef" in texts
        assert "#else" in texts
        assert "#endif" in texts

    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment with * tokens\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [(t.text, t.line) for t in tokens[:-1]] == [
            ("a", 1),
            ("b", 2),
            ("c", 3),
        ]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_underscored_identifiers(self):
        assert tokenize("_x x_1")[0].text == "_x"

    def test_all_keywords_recognized(self):
        from repro.minijava.lexer import KEYWORDS

        for keyword in KEYWORDS:
            token = tokenize(keyword)[0]
            assert token.kind == "keyword", keyword
