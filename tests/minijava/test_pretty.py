"""Pretty printer round-trip tests."""

import pytest

from repro.minijava import parse_program, pretty_print
from repro.spl.examples import DEVICE_SOURCE, FIGURE1_SOURCE


def normalize(program):
    """Stable normal form: print, reparse, print again."""
    return pretty_print(parse_program(pretty_print(program)))


class TestRoundTrip:
    @pytest.mark.parametrize("source", [FIGURE1_SOURCE, DEVICE_SOURCE])
    def test_examples_round_trip(self, source):
        program = parse_program(source)
        printed = pretty_print(program)
        reparsed = parse_program(printed)
        assert pretty_print(reparsed) == printed

    def test_annotations_preserved(self):
        program = parse_program(FIGURE1_SOURCE)
        printed = pretty_print(program)
        assert "#ifdef (F)" in printed
        assert "#ifdef (G)" in printed
        assert "#endif" in printed

    def test_without_annotations(self):
        program = parse_program(FIGURE1_SOURCE)
        printed = pretty_print(program, with_annotations=False)
        assert "#ifdef" not in printed
        # still parseable, all statements kept
        reparsed = parse_program(printed)
        assert len(reparsed.classes) == len(program.classes)

    def test_nested_annotation_printed_as_conjunction(self):
        source = """
        class Main { void main() {
            #ifdef (F) #ifdef (G) int x = 1; #endif #endif
        } }
        """
        printed = pretty_print(parse_program(source))
        assert "#ifdef (F && G)" in printed

    def test_expression_precedence_survives(self):
        source = "class Main { void main() { int x = (1 + 2) * 3; } }"
        printed = pretty_print(parse_program(source))
        assert "(1 + 2) * 3" in printed

    def test_else_chain(self):
        source = """
        class Main { void main() {
            if (x < 1) { y = 1; } else { y = 2; }
        } }
        """
        program = parse_program(
            source.replace("x <", "0 <").replace("y =", "int y0 =", 1).replace(
                "y = 2", "int y1 = 2"
            )
        )
        printed = pretty_print(program)
        assert "} else {" in printed

    def test_generated_subjects_round_trip(self):
        from repro.spl.generator import SubjectSpec, generate_subject

        spec = SubjectSpec(name="rt", seed=7, classes=4, entry_fanout=4,
                           reachable_features=("A", "B", "C"))
        product_line = generate_subject(spec)
        program = parse_program(product_line.source)
        assert pretty_print(program) == product_line.source
