"""Tests for product derivation (the preprocessor)."""

import pytest

from repro.minijava import (
    annotated_features,
    derive_product,
    parse_program,
    pretty_print,
)
from repro.spl.examples import FIGURE1_SOURCE


@pytest.fixture
def figure1_ast():
    return parse_program(FIGURE1_SOURCE)


class TestAnnotatedFeatures:
    def test_figure1(self, figure1_ast):
        assert annotated_features(figure1_ast) == {"F", "G", "H"}

    def test_members_counted(self):
        program = parse_program(
            "class A { #ifdef (M) int f; int m() { return 1; } #endif }"
        )
        assert annotated_features(program) == {"M"}

    def test_nested_blocks_counted(self):
        program = parse_program(
            """
            class A { int m() {
                if (1 < 2) {
                    #ifdef (Deep) int x = 1; #endif
                }
                while (1 < 2) {
                    #ifdef (Loop) int y = 1; #endif
                }
                return 0;
            } }
            """
        )
        assert annotated_features(program) == {"Deep", "Loop"}


class TestDerivation:
    def test_figure1b_product(self, figure1_ast):
        product = derive_product(figure1_ast, {"G"})
        printed = pretty_print(product)
        assert "#ifdef" not in printed
        assert "y = foo(x);" in printed
        assert "x = 0;" not in printed  # F disabled
        assert "p = 0;" not in printed  # H disabled

    def test_all_enabled(self, figure1_ast):
        product = derive_product(figure1_ast, {"F", "G", "H"})
        printed = pretty_print(product)
        assert "x = 0;" in printed
        assert "p = 0;" in printed

    def test_none_enabled(self, figure1_ast):
        product = derive_product(figure1_ast, set())
        printed = pretty_print(product)
        assert "y = foo(x);" not in printed

    def test_original_untouched(self, figure1_ast):
        before = pretty_print(figure1_ast)
        derive_product(figure1_ast, {"F"})
        assert pretty_print(figure1_ast) == before

    def test_member_removal(self):
        program = parse_program(
            "class A { #ifdef (M) int extra() { return 1; } #endif "
            "int keep() { return 2; } }"
        )
        without = derive_product(program, set())
        assert [m.name for m in without.classes[0].methods] == ["keep"]
        with_feature = derive_product(program, {"M"})
        assert [m.name for m in with_feature.classes[0].methods] == [
            "extra",
            "keep",
        ]

    def test_field_removal(self):
        program = parse_program("class A { #ifdef (M) int f; #endif }")
        assert derive_product(program, set()).classes[0].fields == []
        assert len(derive_product(program, {"M"}).classes[0].fields) == 1

    def test_else_region(self):
        program = parse_program(
            """
            class Main { void main() {
                int x = 0;
                #ifdef (F) x = 1; #else x = 2; #endif
                print(x);
            } }
            """
        )
        with_f = pretty_print(derive_product(program, {"F"}))
        without_f = pretty_print(derive_product(program, set()))
        assert "x = 1;" in with_f and "x = 2;" not in with_f
        assert "x = 2;" in without_f and "x = 1;" not in without_f

    def test_nested_regions(self):
        program = parse_program(
            """
            class Main { void main() {
                #ifdef (F) #ifdef (G) int x = 1; #endif #endif
            } }
            """
        )
        assert "int x" in pretty_print(derive_product(program, {"F", "G"}))
        assert "int x" not in pretty_print(derive_product(program, {"F"}))
        assert "int x" not in pretty_print(derive_product(program, {"G"}))

    def test_statements_inside_compounds(self):
        program = parse_program(
            """
            class Main { void main() {
                int y = 0;
                if (y < 1) {
                    #ifdef (F) y = 1; #endif
                    y = 2;
                }
                while (y < 5) {
                    #ifdef (F) y = 3; #endif
                    y = 4;
                }
            } }
            """
        )
        without = pretty_print(derive_product(program, set()))
        assert "y = 1;" not in without
        assert "y = 3;" not in without
        assert "y = 2;" in without and "y = 4;" in without

    def test_negated_condition(self):
        program = parse_program(
            "class Main { void main() { #ifdef (!F) int x = 1; #endif } }"
        )
        assert "int x" in pretty_print(derive_product(program, set()))
        assert "int x" not in pretty_print(derive_product(program, {"F"}))

    def test_mapping_configuration(self, figure1_ast):
        product = derive_product(figure1_ast, {"F": True, "G": False, "H": False})
        printed = pretty_print(product)
        assert "x = 0;" in printed
        assert "y = foo(x);" not in printed
